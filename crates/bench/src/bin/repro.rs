//! `repro` — regenerates every table and figure of the paper's evaluation
//! (§5), plus the ablation studies DESIGN.md calls out.
//!
//! ```text
//! repro [EXPERIMENT ...] [--scale F] [--queries N] [--out DIR]
//!
//! EXPERIMENT: table1 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!             fig14 fig15 fig16 fig17 ablate scaling serve spans ingest
//!             restart health kernels profile all (default: all)
//! --scale F   scales every dataset cardinality by F (default 1.0 = the
//!             paper's sizes; use 0.1 for a quick pass)
//! --queries N queries per experimental point (default 100, as the paper;
//!             fig12 uses 10×N, matching its 1000)
//! --out DIR   where CSVs go (default results/)
//! ```
//!
//! Absolute times are hardware-specific; the *shapes* (who wins, by what
//! factor, where crossovers fall) are what EXPERIMENTS.md compares against
//! the paper.

use sg_bench::measure::{compare, measure_tree, QueryKind};
use sg_bench::report::{f, Table};
use sg_bench::scaled;
use sg_bench::workloads::{
    basket_instance, build_table, build_tree, census_instance, enable_obs, pairs_of, Instance,
    PAGE_SIZE, POOL_FRAMES, SEED,
};
use sg_obs::{Registry, RegistrySnapshot};
use sg_pager::MemStore;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_quest::dataset_name;
use sg_sig::{Metric, MetricKind, Signature};
use sg_tree::{
    bulkload, ChooseSubtree, Entry, Node, QueryProbe, SgTree, SoaNode, SplitPolicy, TreeConfig,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Opts {
    experiments: Vec<String>,
    scale: f64,
    queries: usize,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        experiments: Vec::new(),
        scale: 1.0,
        queries: 100,
        out: PathBuf::from("results"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--queries" => {
                opts.queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--queries needs an integer"));
            }
            "--out" => {
                opts.out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--help" | "-h" => {
                println!("repro [EXPERIMENT ...] [--scale F] [--queries N] [--out DIR]");
                println!(
                    "experiments: table1 fig5..fig17 ablate scaling serve spans ingest restart \
                     health kernels profile all"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => opts.experiments.push(other.to_string()),
        }
    }
    if opts.experiments.is_empty() {
        opts.experiments.push("all".to_string());
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// Captures the metrics recorded while one experiment section ran: the
/// global-registry delta since the previous section, serialized to JSON
/// and attached to every table the section produced.
fn finish_section(
    registry: &Registry,
    last: &mut RegistrySnapshot,
    section: Vec<Table>,
    out: &mut Vec<(Table, String)>,
) {
    let now = registry.snapshot();
    let metrics = sg_obs::export::to_json(&now.since(last));
    *last = now;
    for t in section {
        out.push((t, metrics.clone()));
    }
}

fn main() {
    let opts = parse_args();
    enable_obs();
    let registry = Registry::global();
    let mut last = registry.snapshot();
    let all = opts.experiments.iter().any(|e| e == "all");
    let want = |name: &str| all || opts.experiments.iter().any(|e| e == name);
    let mut tables: Vec<(Table, String)> = Vec::new();
    let t0 = Instant::now();

    if want("table1") {
        finish_section(registry, &mut last, table1(&opts), &mut tables);
    }
    if want("fig5") || want("fig6") {
        finish_section(registry, &mut last, fig5_6(&opts), &mut tables);
    }
    if want("fig7") || want("fig8") {
        finish_section(registry, &mut last, fig7_8(&opts), &mut tables);
    }
    if want("fig9") || want("fig10") {
        finish_section(registry, &mut last, fig9_10(&opts), &mut tables);
    }
    if want("fig11") {
        finish_section(registry, &mut last, fig11(&opts), &mut tables);
    }
    if want("fig12") {
        finish_section(registry, &mut last, fig12(&opts), &mut tables);
    }
    if want("fig13") {
        finish_section(registry, &mut last, fig13_14(&opts, false), &mut tables);
    }
    if want("fig14") {
        finish_section(registry, &mut last, fig13_14(&opts, true), &mut tables);
    }
    if want("fig15") {
        finish_section(registry, &mut last, fig15_16(&opts, false), &mut tables);
    }
    if want("fig16") {
        finish_section(registry, &mut last, fig15_16(&opts, true), &mut tables);
    }
    if want("fig17") {
        finish_section(registry, &mut last, fig17(&opts), &mut tables);
    }
    if want("ablate") {
        finish_section(registry, &mut last, ablations(&opts), &mut tables);
    }
    if want("scaling") {
        finish_section(registry, &mut last, scaling(&opts), &mut tables);
    }
    if want("serve") {
        finish_section(registry, &mut last, serve(&opts), &mut tables);
    }
    if want("spans") {
        finish_section(registry, &mut last, spans(&opts), &mut tables);
    }
    if want("ingest") {
        finish_section(registry, &mut last, ingest(&opts), &mut tables);
    }
    if want("restart") {
        finish_section(registry, &mut last, restart(&opts), &mut tables);
    }
    if want("health") {
        finish_section(registry, &mut last, health(&opts), &mut tables);
    }
    if want("kernels") {
        finish_section(registry, &mut last, kernels_fig(&opts), &mut tables);
    }
    if want("profile") {
        finish_section(registry, &mut last, profile_fig(&opts), &mut tables);
    }

    for (t, metrics) in &tables {
        println!("{}", t.render());
        match t.save_csv(&opts.out) {
            Ok(p) => println!("   -> {}", p.display()),
            Err(e) => eprintln!("   !! could not save CSV: {e}"),
        }
        let mpath = opts.out.join(format!("metrics_{}.json", t.name));
        match std::fs::write(&mpath, metrics) {
            Ok(()) => println!("   -> {}\n", mpath.display()),
            Err(e) => eprintln!("   !! could not save metrics: {e}\n"),
        }
    }
    println!(
        "repro: {} tables in {:.1}s (scale {})",
        tables.len(),
        t0.elapsed().as_secs_f64(),
        opts.scale
    );
}

/// Appends the standard tree-vs-table comparison row.
fn push_cmp(
    pct_time: &mut Table,
    ios: Option<&mut Table>,
    x: &str,
    c: sg_bench::measure::Comparison,
) {
    pct_time.row(vec![
        x.to_string(),
        f(c.table.pct_data),
        f(c.tree.pct_data),
        f(c.table.time_ms),
        f(c.tree.time_ms),
    ]);
    if let Some(ios) = ios {
        ios.row(vec![x.to_string(), f(c.table.ios), f(c.tree.ios)]);
    }
}

// ---------------------------------------------------------------- Table 1

fn table1(opts: &Opts) -> Vec<Table> {
    let d = scaled(200_000, opts.scale);
    eprintln!("[table1] split-policy comparison on CENSUS ({d} tuples)…");
    let mut out = Table::new(
        "table1",
        "Comparison of the three split policies (uncompressed trees, CENSUS, NN queries)",
        &["metric", "q-split", "av-link", "min-link"],
    );
    let policies = [
        SplitPolicy::Quadratic,
        SplitPolicy::AvLink,
        SplitPolicy::MinLink,
    ];
    let mut areas: Vec<Vec<f64>> = Vec::new();
    let mut insert_ms: Vec<f64> = Vec::new();
    let mut avgs: Vec<sg_bench::measure::Avg> = Vec::new();
    let metric = Metric::hamming();
    for policy in policies {
        // Table 1 uses uncompressed trees.
        let (inst, queries) = {
            let gen = sg_quest::census::CensusGenerator::new(
                sg_quest::census::Schema::census(),
                sg_quest::census::CensusParams::default(),
                SEED,
            );
            let ds = gen.dataset(d, SEED);
            let data = pairs_of(&ds);
            let cfg = TreeConfig::new(ds.n_items).split(policy).compression(false);
            let (tree, tree_build_secs) = build_tree(ds.n_items, &data, Some(cfg));
            let (table, table_build_secs) = build_table(ds.n_items, &data);
            let scan = sg_bench::workloads::build_scan(ds.n_items, &data);
            let queries: Vec<Signature> = gen
                .queries(opts.queries, SEED)
                .iter()
                .map(|q| Signature::from_items(ds.n_items, q))
                .collect();
            (
                Instance {
                    nbits: ds.n_items,
                    data,
                    tree,
                    table,
                    scan,
                    tree_build_secs,
                    table_build_secs,
                },
                queries,
            )
        };
        let la = inst.tree.level_areas();
        areas.push(la);
        insert_ms.push(1000.0 * inst.tree_build_secs / d as f64);
        avgs.push(measure_tree(&inst, &queries, QueryKind::Knn(1), &metric));
    }
    for level in 1..=3usize {
        out.row(
            std::iter::once(format!("avg area at level {level}"))
                .chain(
                    areas
                        .iter()
                        .map(|a| f(a.get(level).copied().unwrap_or(0.0))),
                )
                .collect(),
        );
    }
    out.row(
        std::iter::once("insertion cost (ms)".to_string())
            .chain(insert_ms.iter().map(|&x| format!("{x:.4}")))
            .collect(),
    );
    out.row(
        std::iter::once("% of data accessed".to_string())
            .chain(avgs.iter().map(|a| f(a.pct_data)))
            .collect(),
    );
    out.row(
        std::iter::once("CPU time (ms)".to_string())
            .chain(avgs.iter().map(|a| f(a.time_ms)))
            .collect(),
    );
    out.row(
        std::iter::once("I/Os".to_string())
            .chain(avgs.iter().map(|a| f(a.ios)))
            .collect(),
    );
    out.row(
        std::iter::once("pool hit rate".to_string())
            .chain(avgs.iter().map(|a| format!("{:.4}", a.hit_rate)))
            .collect(),
    );
    vec![out]
}

// ------------------------------------------------------------- Figs 5—10

fn fig5_6(opts: &Opts) -> Vec<Table> {
    let d = scaled(200_000, opts.scale);
    let mut pct = Table::new(
        "fig5",
        "Pruning and CPU time varying T (I=6, D=200K)",
        &[
            "T",
            "SG-table %data",
            "SG-tree %data",
            "SG-table ms",
            "SG-tree ms",
        ],
    );
    let mut ios = Table::new(
        "fig6",
        "Random I/Os varying T",
        &["T", "SG-table", "SG-tree"],
    );
    for t in [10u32, 15, 20, 25, 30] {
        eprintln!("[fig5/6] {}…", dataset_name(t, 6, d));
        let (inst, queries) = basket_instance(t, 6, d, opts.queries, SplitPolicy::AvLink);
        let c = compare(&inst, &queries, QueryKind::Knn(1), &Metric::hamming());
        push_cmp(&mut pct, Some(&mut ios), &t.to_string(), c);
    }
    vec![pct, ios]
}

fn fig7_8(opts: &Opts) -> Vec<Table> {
    let d = scaled(200_000, opts.scale);
    let mut pct = Table::new(
        "fig7",
        "Pruning and CPU time varying I (T=30, D=200K)",
        &[
            "I",
            "SG-table %data",
            "SG-tree %data",
            "SG-table ms",
            "SG-tree ms",
        ],
    );
    let mut ios = Table::new(
        "fig8",
        "Random I/Os varying I",
        &["I", "SG-table", "SG-tree"],
    );
    for i in [6u32, 12, 18, 24] {
        eprintln!("[fig7/8] {}…", dataset_name(30, i, d));
        let (inst, queries) = basket_instance(30, i, d, opts.queries, SplitPolicy::AvLink);
        let c = compare(&inst, &queries, QueryKind::Knn(1), &Metric::hamming());
        push_cmp(&mut pct, Some(&mut ios), &i.to_string(), c);
    }
    vec![pct, ios]
}

fn fig9_10(opts: &Opts) -> Vec<Table> {
    let d = scaled(200_000, opts.scale);
    let mut pct = Table::new(
        "fig9",
        "Pruning and CPU time, fixed I/T=0.6 (D=200K)",
        &[
            "T,I",
            "SG-table %data",
            "SG-tree %data",
            "SG-table ms",
            "SG-tree ms",
        ],
    );
    let mut ios = Table::new(
        "fig10",
        "Random I/Os, fixed I/T=0.6",
        &["T,I", "SG-table", "SG-tree"],
    );
    for (t, i) in [(10u32, 6u32), (20, 12), (30, 18), (40, 24), (50, 30)] {
        eprintln!("[fig9/10] {}…", dataset_name(t, i, d));
        let (inst, queries) = basket_instance(t, i, d, opts.queries, SplitPolicy::AvLink);
        let c = compare(&inst, &queries, QueryKind::Knn(1), &Metric::hamming());
        push_cmp(&mut pct, Some(&mut ios), &format!("T{t}I{i}"), c);
    }
    vec![pct, ios]
}

fn fig11(opts: &Opts) -> Vec<Table> {
    let mut pct = Table::new(
        "fig11",
        "Pruning and CPU time varying dataset cardinality (T=10, I=6)",
        &[
            "D",
            "SG-table %data",
            "SG-tree %data",
            "SG-table ms",
            "SG-tree ms",
        ],
    );
    for d100 in [100_000usize, 200_000, 300_000, 400_000, 500_000] {
        let d = scaled(d100, opts.scale);
        eprintln!("[fig11] {}…", dataset_name(10, 6, d));
        let (inst, queries) = basket_instance(10, 6, d, opts.queries, SplitPolicy::AvLink);
        let c = compare(&inst, &queries, QueryKind::Knn(1), &Metric::hamming());
        push_cmp(&mut pct, None, &d.to_string(), c);
    }
    vec![pct]
}

// ---------------------------------------------------------------- Fig 12

fn fig12(opts: &Opts) -> Vec<Table> {
    let d = scaled(200_000, opts.scale);
    let n_queries = opts.queries * 10; // the paper ran 1000 here
    eprintln!(
        "[fig12] NN-distance buckets on {} ({n_queries} queries)…",
        dataset_name(30, 18, d)
    );
    let (inst, queries) = basket_instance(30, 18, d, n_queries, SplitPolicy::AvLink);
    let metric = Metric::hamming();
    let buckets = ["0", "1 to 3", "4 to 10", "11 to 20", ">20"];
    let idx_of = |dist: f64| -> usize {
        if dist == 0.0 {
            0
        } else if dist <= 3.0 {
            1
        } else if dist <= 10.0 {
            2
        } else if dist <= 20.0 {
            3
        } else {
            4
        }
    };
    #[derive(Default, Clone, Copy)]
    struct Acc {
        pct: f64,
        ms: f64,
        n: u64,
    }
    let mut tree_acc = [Acc::default(); 5];
    let mut table_acc = [Acc::default(); 5];
    for q in &queries {
        inst.tree.pool().clear();
        inst.tree.pool().stats().reset();
        let t0 = Instant::now();
        let (res, stats) = inst.tree.nn(q, &metric);
        let secs = t0.elapsed().as_secs_f64();
        let b = idx_of(res.first().map_or(f64::INFINITY, |n| n.dist));
        tree_acc[b].pct += 100.0 * stats.data_compared as f64 / d as f64;
        tree_acc[b].ms += 1000.0 * secs;
        tree_acc[b].n += 1;

        inst.table.pool().clear();
        inst.table.pool().stats().reset();
        let t0 = Instant::now();
        let (res, stats) = inst.table.nn(q, &metric);
        let secs = t0.elapsed().as_secs_f64();
        let b = idx_of(res.first().map_or(f64::INFINITY, |n| n.dist));
        table_acc[b].pct += 100.0 * stats.data_compared as f64 / d as f64;
        table_acc[b].ms += 1000.0 * secs;
        table_acc[b].n += 1;
    }
    let mut out = Table::new(
        "fig12",
        "Pruning and CPU time by NN distance (T30.I18.D200K)",
        &[
            "nn distance",
            "queries",
            "SG-table %data",
            "SG-tree %data",
            "SG-table ms",
            "SG-tree ms",
        ],
    );
    for (b, label) in buckets.iter().enumerate() {
        let (ta, tr) = (table_acc[b], tree_acc[b]);
        let tn = tr.n.max(1) as f64;
        let an = ta.n.max(1) as f64;
        out.row(vec![
            label.to_string(),
            tr.n.to_string(),
            f(ta.pct / an),
            f(tr.pct / tn),
            f(ta.ms / an),
            f(tr.ms / tn),
        ]);
    }
    vec![out]
}

// ------------------------------------------------------------ Figs 13—16

fn fig13_14(opts: &Opts, census: bool) -> Vec<Table> {
    let d = scaled(200_000, opts.scale);
    let (name, title, inst, queries) = if census {
        eprintln!("[fig14] k-NN on CENSUS…");
        let (inst, q) = census_instance(d, opts.queries, SplitPolicy::AvLink);
        ("fig14", "k-NN queries on CENSUS", inst, q)
    } else {
        eprintln!("[fig13] k-NN on {}…", dataset_name(30, 18, d));
        let (inst, q) = basket_instance(30, 18, d, opts.queries, SplitPolicy::AvLink);
        ("fig13", "k-NN queries on T30.I18.D200K", inst, q)
    };
    let mut out = Table::new(
        name,
        title,
        &[
            "k",
            "SG-table %data",
            "SG-tree %data",
            "SG-table ms",
            "SG-tree ms",
        ],
    );
    for k in [1usize, 10, 100, 1000, 10_000] {
        let k = k.min(inst.data.len());
        let c = compare(&inst, &queries, QueryKind::Knn(k), &Metric::hamming());
        push_cmp(&mut out, None, &k.to_string(), c);
    }
    vec![out]
}

fn fig15_16(opts: &Opts, census: bool) -> Vec<Table> {
    let d = scaled(200_000, opts.scale);
    let (name, title, inst, queries) = if census {
        eprintln!("[fig16] range queries on CENSUS…");
        let (inst, q) = census_instance(d, opts.queries, SplitPolicy::AvLink);
        ("fig16", "Similarity range queries on CENSUS", inst, q)
    } else {
        eprintln!("[fig15] range queries on {}…", dataset_name(30, 18, d));
        let (inst, q) = basket_instance(30, 18, d, opts.queries, SplitPolicy::AvLink);
        (
            "fig15",
            "Similarity range queries on T30.I18.D200K",
            inst,
            q,
        )
    };
    let mut out = Table::new(
        name,
        title,
        &[
            "eps",
            "SG-table %data",
            "SG-tree %data",
            "SG-table ms",
            "SG-tree ms",
        ],
    );
    for eps in [2.0f64, 4.0, 6.0, 8.0, 10.0] {
        let c = compare(&inst, &queries, QueryKind::Range(eps), &Metric::hamming());
        push_cmp(&mut out, None, &format!("{eps:.0}"), c);
    }
    vec![out]
}

// ---------------------------------------------------------------- Fig 17

fn fig17(opts: &Opts) -> Vec<Table> {
    let batch = scaled(100_000, opts.scale);
    eprintln!(
        "[fig17] dynamic updates: 5 batches of {} (T=10, I=6)…",
        batch
    );
    let metric = Metric::hamming();
    let nbits = 1000u32;
    // Batch b has its own pattern pool (fresh seed → different large
    // itemsets), modelling distribution drift.
    let pools: Vec<PatternPool> = (0..5)
        .map(|b| PatternPool::new(BasketParams::standard(10, 6), SEED + 1000 * b as u64))
        .collect();
    let mut out = Table::new(
        "fig17",
        "NN search after dynamic updates (batches with drifting itemsets)",
        &[
            "D",
            "SG-table %data",
            "SG-tree %data",
            "SG-table ms",
            "SG-tree ms",
        ],
    );
    // Both structures are built from batch 1; later batches are *inserted*,
    // so the table keeps its stale vertical signatures.
    let first = pools[0].dataset(batch, SEED);
    let data1 = pairs_of(&first);
    let (mut tree, _) = build_tree(nbits, &data1, None);
    let (mut table, _) = build_table(nbits, &data1);
    let scan_store: Arc<MemStore> = Arc::new(MemStore::new(PAGE_SIZE));
    let mut all_data = data1;
    // A deterministic RNG for picking which batch generates each query.
    let mut x = SEED ^ 0xF17;
    for phase in 1..=5usize {
        if phase > 1 {
            let ds = pools[phase - 1].dataset(batch, SEED + phase as u64);
            let base = all_data.len() as u64;
            for (off, (_, sig)) in pairs_of(&ds).into_iter().enumerate() {
                let tid = base + off as u64;
                tree.insert(tid, &sig);
                table.insert(tid, &sig);
                all_data.push((tid, sig));
            }
        }
        // Queries: each drawn from a uniformly random earlier batch's pool.
        let mut queries = Vec::with_capacity(opts.queries);
        for qi in 0..opts.queries {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) as usize % phase;
            let q = &pools[b].queries(opts.queries, SEED + 77 + qi as u64)[qi % opts.queries];
            queries.push(Signature::from_items(nbits, q));
        }
        let scan = sg_tree::ScanIndex::build(
            scan_store.clone(),
            nbits,
            POOL_FRAMES,
            all_data.iter().cloned(),
        );
        let inst = Instance {
            nbits,
            data: all_data.clone(),
            tree,
            table,
            scan,
            tree_build_secs: 0.0,
            table_build_secs: 0.0,
        };
        let c = compare(&inst, &queries, QueryKind::Knn(1), &metric);
        push_cmp(&mut out, None, &(phase * batch).to_string(), c);
        tree = inst.tree;
        table = inst.table;
    }
    vec![out]
}

// -------------------------------------------------------------- Ablations

fn ablations(opts: &Opts) -> Vec<Table> {
    let d = scaled(50_000, opts.scale);
    eprintln!(
        "[ablate] design ablations on {} and CENSUS…",
        dataset_name(20, 12, d)
    );
    let metric = Metric::hamming();
    let pool = PatternPool::new(BasketParams::standard(20, 12), SEED);
    let ds = pool.dataset(d, SEED);
    let data = pairs_of(&ds);
    let queries: Vec<Signature> = pool
        .queries(opts.queries, SEED)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    let mut tables = Vec::new();

    // (a) Choose-subtree heuristics: min-enlargement vs min-overlap.
    {
        let mut t = Table::new(
            "ablate_choose",
            "ChooseSubtree: min-enlargement (paper's pick) vs min-overlap",
            &["heuristic", "build s", "%data", "ms", "I/Os"],
        );
        for (label, choose) in [
            ("min-enlargement", ChooseSubtree::MinEnlargement),
            ("min-overlap", ChooseSubtree::MinOverlap),
        ] {
            let cfg = TreeConfig::new(ds.n_items).choose(choose);
            let (tree, secs) = build_tree(ds.n_items, &data, Some(cfg));
            let inst = wrap_tree(&ds, &data, tree);
            let avg = measure_tree(&inst, &queries, QueryKind::Knn(1), &metric);
            t.row(vec![
                label.to_string(),
                f(secs),
                f(avg.pct_data),
                f(avg.time_ms),
                f(avg.ios),
            ]);
        }
        tables.push(t);
    }

    // (b) Compression on/off: space and I/O.
    {
        let mut t = Table::new(
            "ablate_compression",
            "Sparse-signature compression (§3.2): space and query I/O",
            &["compression", "tree pages", "%data", "I/Os"],
        );
        for (label, on) in [("on", true), ("off", false)] {
            let cfg = TreeConfig::new(ds.n_items).compression(on);
            let (tree, _) = build_tree(ds.n_items, &data, Some(cfg));
            let pages = tree.node_count();
            let inst = wrap_tree(&ds, &data, tree);
            let avg = measure_tree(&inst, &queries, QueryKind::Knn(1), &metric);
            t.row(vec![
                label.to_string(),
                pages.to_string(),
                f(avg.pct_data),
                f(avg.ios),
            ]);
        }
        tables.push(t);
    }

    // (c) Gray-code bulk load vs one-by-one insertion.
    {
        let mut t = Table::new(
            "ablate_bulkload",
            "Gray-code bulk loading (§6) vs one-by-one insertion",
            &["build", "build s", "tree pages", "%data", "I/Os"],
        );
        let (tree, secs) = build_tree(ds.n_items, &data, None);
        let pages = tree.node_count();
        let inst = wrap_tree(&ds, &data, tree);
        let avg = measure_tree(&inst, &queries, QueryKind::Knn(1), &metric);
        t.row(vec![
            "insert".into(),
            f(secs),
            pages.to_string(),
            f(avg.pct_data),
            f(avg.ios),
        ]);

        let t0 = Instant::now();
        let tree = bulkload::bulk_load(
            Arc::new(MemStore::new(PAGE_SIZE)),
            TreeConfig::new(ds.n_items).pool_frames(POOL_FRAMES),
            data.iter().cloned(),
            1.0,
        )
        .expect("bulk load");
        let secs = t0.elapsed().as_secs_f64();
        let pages = tree.node_count();
        let inst = wrap_tree(&ds, &data, tree);
        let avg = measure_tree(&inst, &queries, QueryKind::Knn(1), &metric);
        t.row(vec![
            "gray-code".into(),
            f(secs),
            pages.to_string(),
            f(avg.pct_data),
            f(avg.ios),
        ]);
        tables.push(t);
    }

    // (d) Depth-first vs best-first NN: node accesses.
    {
        let mut t = Table::new(
            "ablate_bestfirst",
            "Depth-first (Fig. 4) vs best-first NN: node accesses per query",
            &["algorithm", "nodes", "%data"],
        );
        let (tree, _) = build_tree(ds.n_items, &data, None);
        let mut df = (0u64, 0u64);
        let mut bf = (0u64, 0u64);
        for q in &queries {
            let (_, s) = tree.nn(q, &metric);
            df.0 += s.nodes_accessed;
            df.1 += s.data_compared;
            let (_, s) = tree.knn_best_first(q, 1, &metric);
            bf.0 += s.nodes_accessed;
            bf.1 += s.data_compared;
        }
        let n = queries.len().max(1) as f64;
        t.row(vec![
            "depth-first".into(),
            f(df.0 as f64 / n),
            f(100.0 * df.1 as f64 / n / d as f64),
        ]);
        t.row(vec![
            "best-first".into(),
            f(bf.0 as f64 / n),
            f(100.0 * bf.1 as f64 / n / d as f64),
        ]);
        tables.push(t);
    }

    // (e) Fixed-dimensionality bound on categorical data (§6).
    {
        let mut t = Table::new(
            "ablate_fixed_dim",
            "Relaxed vs fixed-dimensionality Hamming bound on CENSUS",
            &["bound", "%data", "nodes"],
        );
        let (inst, cqueries) = census_instance(
            scaled(50_000, opts.scale),
            opts.queries,
            SplitPolicy::AvLink,
        );
        for (label, m) in [
            ("relaxed |q\\e|", Metric::hamming()),
            (
                "fixed d=36",
                Metric::with_fixed_dim(MetricKind::Hamming, 36),
            ),
        ] {
            let avg = measure_tree(&inst, &cqueries, QueryKind::Knn(1), &m);
            t.row(vec![label.to_string(), f(avg.pct_data), f(avg.pages)]);
        }
        tables.push(t);
    }

    // (f) SG-table rebuild vs stale signatures under drift (the "expensive
    // periodic re-organization" §2.2.1 says a dynamic environment forces).
    {
        let mut t = Table::new(
            "ablate_rebuild",
            "SG-table under drift: stale vertical signatures vs periodic rebuild",
            &["table", "%data", "ms"],
        );
        let batch = scaled(25_000, opts.scale);
        let pools: Vec<PatternPool> = (0..3)
            .map(|b| PatternPool::new(BasketParams::standard(10, 6), SEED + 900 + b))
            .collect();
        let first = pools[0].dataset(batch, SEED);
        let data1 = pairs_of(&first);
        let (mut stale, _) = build_table(1000, &data1);
        let mut all = data1;
        for (b, pool) in pools.iter().enumerate().skip(1) {
            let ds = pool.dataset(batch, SEED + b as u64);
            let base = all.len() as u64;
            for (off, (_, sig)) in pairs_of(&ds).into_iter().enumerate() {
                stale.insert(base + off as u64, &sig);
                all.push((base + off as u64, sig));
            }
        }
        let rebuilt_params = sg_table::TableParams {
            pool_frames: POOL_FRAMES,
            ..Default::default()
        };
        let mut rebuilt = sg_table::SgTable::build(
            Arc::new(MemStore::new(PAGE_SIZE)),
            1000,
            &rebuilt_params,
            &[],
        );
        for (tid, sig) in &all {
            rebuilt.insert(*tid, sig);
        }
        rebuilt.rebuild(&rebuilt_params);
        // Queries from the *newest* batch — the drifted distribution.
        let queries: Vec<Signature> = pools[2]
            .queries(opts.queries, SEED)
            .iter()
            .map(|q| Signature::from_items(1000, q))
            .collect();
        for (label, table) in [("stale", &stale), ("rebuilt", &rebuilt)] {
            let mut cmp = 0u64;
            let mut secs = 0f64;
            for q in &queries {
                table.pool().clear();
                table.pool().stats().reset();
                let t0 = Instant::now();
                let _ = table.knn(q, 1, &metric);
                secs += t0.elapsed().as_secs_f64();
                cmp += table.knn(q, 1, &metric).1.data_compared;
            }
            let n = queries.len().max(1) as f64;
            t.row(vec![
                label.to_string(),
                f(100.0 * cmp as f64 / n / all.len() as f64),
                f(1000.0 * secs / n),
            ]);
        }
        tables.push(t);
    }

    // (g) Beyond-paper baseline: inverted lists (Helmer & Moerkotte, the
    // paper's [14]) — best-in-class for containment, weaker for NN.
    {
        let mut t = Table::new(
            "ablate_inverted",
            "SG-tree vs inverted lists: containment (the tree's conceded query) and 1-NN",
            &["query", "index", "%data", "pages", "ms"],
        );
        let (tree, _) = build_tree(ds.n_items, &data, None);
        let inv = sg_inverted::InvertedIndex::build(
            Arc::new(MemStore::new(PAGE_SIZE)),
            ds.n_items,
            POOL_FRAMES,
            &data,
        );
        // Containment probes: 3-item prefixes of indexed transactions.
        let probes: Vec<Signature> = data
            .iter()
            .step_by(data.len() / opts.queries.max(1) + 1)
            .map(|(_, s)| Signature::from_iter(ds.n_items, s.ones().take(3)))
            .collect();
        let mut rows: Vec<(String, String, f64, f64, f64)> = Vec::new();
        for (label, run) in [("containment", true), ("1-NN", false)] {
            for (index, is_tree) in [("sg-tree", true), ("inverted", false)] {
                let mut cmp = 0u64;
                let mut pages = 0u64;
                let mut secs = 0f64;
                let qs: &[Signature] = if run { &probes } else { &queries };
                for q in qs {
                    let t0 = Instant::now();
                    let stats = match (run, is_tree) {
                        (true, true) => tree.containing(q).1,
                        (true, false) => inv.containing(q).1,
                        (false, true) => tree.nn(q, &metric).1,
                        (false, false) => inv.nn(q, &metric).1,
                    };
                    secs += t0.elapsed().as_secs_f64();
                    cmp += stats.data_compared;
                    pages += stats.nodes_accessed;
                }
                let n = qs.len().max(1) as f64;
                rows.push((
                    label.to_string(),
                    index.to_string(),
                    100.0 * cmp as f64 / n / d as f64,
                    pages as f64 / n,
                    1000.0 * secs / n,
                ));
            }
        }
        for (label, index, pct, pages, ms) in rows {
            t.row(vec![label, index, f(pct), f(pages), f(ms)]);
        }
        tables.push(t);
    }

    // (h) Beyond-paper baseline: MinHash-LSH (the paper's [11] family) —
    // approximate Jaccard search; measure its recall against the exact
    // tree at matched workloads.
    {
        let mut t = Table::new(
            "ablate_minhash",
            "Exact SG-tree vs approximate MinHash-LSH (Jaccard 10-NN)",
            &["index", "recall@10", "candidates/query", "ms"],
        );
        let (tree, _) = build_tree(ds.n_items, &data, None);
        let lsh =
            sg_minhash::MinHashLsh::build(ds.n_items, sg_minhash::LshParams::default(), &data);
        let mj = Metric::jaccard();
        let mut recall_hits = 0usize;
        let mut recall_total = 0usize;
        let mut cand = 0u64;
        let mut tree_secs = 0f64;
        let mut lsh_secs = 0f64;
        for q in &queries {
            let t0 = Instant::now();
            let (exact, _) = tree.knn(q, 10, &mj);
            tree_secs += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let (approx, stats) = lsh.knn(q, 10, &mj);
            lsh_secs += t0.elapsed().as_secs_f64();
            cand += stats.data_compared;
            // Distance-based recall: an approximate hit counts when its
            // distance matches the exact i-th distance (ties make id
            // comparison unfair).
            let exact_d: Vec<f64> = exact.iter().map(|n| n.dist).collect();
            let mut approx_d: Vec<f64> = approx.iter().map(|n| n.dist).collect();
            for &ed in &exact_d {
                recall_total += 1;
                if let Some(pos) = approx_d.iter().position(|&ad| (ad - ed).abs() < 1e-9) {
                    approx_d.remove(pos);
                    recall_hits += 1;
                }
            }
        }
        let n = queries.len().max(1) as f64;
        t.row(vec![
            "sg-tree (exact)".into(),
            "1.0000".into(),
            f(d as f64), // the exact index conceptually considers all data
            f(1000.0 * tree_secs / n),
        ]);
        t.row(vec![
            "minhash-lsh".into(),
            f(recall_hits as f64 / recall_total.max(1) as f64),
            f(cand as f64 / n),
            f(1000.0 * lsh_secs / n),
        ]);
        tables.push(t);
    }

    // (i) Jaccard metric end-to-end (§6 future work).
    {
        let mut t = Table::new(
            "ablate_jaccard",
            "SG-tree NN search under the Jaccard metric (§6)",
            &["metric", "%data", "mean NN dist"],
        );
        let (tree, _) = build_tree(ds.n_items, &data, None);
        let inst = wrap_tree(&ds, &data, tree);
        for (label, m) in [
            ("hamming", Metric::hamming()),
            ("jaccard", Metric::jaccard()),
        ] {
            let avg = measure_tree(&inst, &queries, QueryKind::Knn(1), &m);
            t.row(vec![label.to_string(), f(avg.pct_data), f(avg.worst_dist)]);
        }
        tables.push(t);
    }

    tables
}

/// Wraps a tree with table/scan baselines for [`measure_tree`] use.
fn wrap_tree(ds: &sg_quest::Dataset, data: &[(u64, Signature)], tree: SgTree) -> Instance {
    let (table, table_build_secs) = build_table(ds.n_items, &data[..data.len().min(1)]);
    let scan = sg_bench::workloads::build_scan(ds.n_items, data);
    Instance {
        nbits: ds.n_items,
        data: data.to_vec(),
        tree,
        table,
        table_build_secs,
        tree_build_secs: 0.0,
        scan,
    }
}

// ------------------------------------------------------------ Scaling

/// Not in the paper: batch-query throughput of the sharded executor
/// (`sg-exec`) against shard count, on the T8.I4 basket workload. Each
/// configuration pushes the same k-NN batch through the executor and
/// reports queries/second plus the per-query fan-out costs.
fn scaling(opts: &Opts) -> Vec<Table> {
    use sg_exec::{ExecConfig, Partitioner, QueryRequest, ShardedExecutor};

    let d = scaled(100_000, opts.scale);
    eprintln!("[scaling] sharded executor on {}…", dataset_name(8, 4, d));
    let pool = PatternPool::new(BasketParams::standard(8, 4), SEED);
    let ds = pool.dataset(d, SEED);
    let data = pairs_of(&ds);
    let queries: Vec<Signature> = pool
        .queries(opts.queries, SEED ^ 0x5CA1E)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    let m = Metric::jaccard();

    let mut out = Table::new(
        "scaling",
        "Sharded executor: batch k-NN throughput vs shard count (T8.I4)",
        &[
            "shards",
            "threads",
            "build s",
            "batch q/s",
            "speedup",
            "nodes/query",
            "merge us/query",
        ],
    );
    let mut base_qps = 0.0;
    for shards in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let exec = ShardedExecutor::build(
            ds.n_items,
            &data,
            &ExecConfig {
                shards,
                partitioner: Partitioner::SignatureClustered,
                page_size: PAGE_SIZE,
                pool_frames: POOL_FRAMES,
                ..ExecConfig::default()
            },
        )
        .expect("executor config");
        let build_secs = t0.elapsed().as_secs_f64();

        let batch: Vec<QueryRequest> = queries
            .iter()
            .map(|q| QueryRequest::Knn {
                q: q.clone(),
                k: 10,
                metric: m,
            })
            .collect();
        // Warm the pools once, then measure.
        let _ = exec.execute_batch(batch.clone());
        let t0 = Instant::now();
        let results = exec.execute_batch(batch);
        let secs = t0.elapsed().as_secs_f64();

        let qps = results.len() as f64 / secs;
        if shards == 1 {
            base_qps = qps;
        }
        let n = results.len() as f64;
        let ok = results.iter().flatten().collect::<Vec<_>>();
        let nodes: u64 = ok.iter().map(|r| r.stats.nodes_accessed).sum();
        let merge_ns: u64 = ok.iter().map(|r| r.merge_ns).sum();
        out.row(vec![
            shards.to_string(),
            exec.threads().to_string(),
            f(build_secs),
            f(qps),
            f(qps / base_qps),
            f(nodes as f64 / n),
            f(merge_ns as f64 / n / 1000.0),
        ]);
    }
    vec![out]
}

/// The `serve` figure: closed- and open-loop load against an embedded
/// sg-serve instance over real loopback sockets — end-to-end throughput
/// and tail latency of the full network + micro-batching + executor
/// pipeline. The fixed closed-loop point also appends a perf-trajectory
/// entry to `BENCH_serve.json`.
fn serve(opts: &Opts) -> Vec<Table> {
    use sg_exec::{ExecConfig, Partitioner, ShardedExecutor};
    use sg_serve::{LoadConfig, LoadMode, ServeConfig, Server, Workload};

    let d = scaled(100_000, opts.scale);
    eprintln!("[serve] network service on {}…", dataset_name(8, 4, d));
    let pool = PatternPool::new(BasketParams::standard(8, 4), SEED);
    let ds = pool.dataset(d, SEED);
    let data = pairs_of(&ds);
    let exec = Arc::new(
        ShardedExecutor::build(
            ds.n_items,
            &data,
            &ExecConfig {
                shards: 4,
                partitioner: Partitioner::SignatureClustered,
                page_size: PAGE_SIZE,
                pool_frames: POOL_FRAMES,
                ..ExecConfig::default()
            },
        )
        .expect("executor config"),
    );
    let server = Server::start(
        exec,
        Arc::new(Registry::new()),
        ServeConfig {
            admin_addr: None,
            ..ServeConfig::default()
        },
    )
    .expect("start embedded server");
    let addr = server.local_addr().to_string();

    let mut out = Table::new(
        "serve",
        "Network service: load-generator throughput and tail latency (T8.I4)",
        &[
            "mode", "conns", "queries", "q/s", "p50 us", "p95 us", "p99 us", "busy",
        ],
    );
    let base = LoadConfig {
        addr,
        conns: 4,
        queries: (opts.queries * 10).max(1000),
        nbits: ds.n_items,
        query_items: 8,
        workload: Workload::Mix,
        ..LoadConfig::default()
    };
    let mut trajectory: Option<(LoadConfig, sg_serve::LoadReport)> = None;
    for mode in [LoadMode::Closed, LoadMode::Open { rate_qps: 2000.0 }] {
        let cfg = LoadConfig {
            mode,
            ..base.clone()
        };
        let report = sg_serve::run_load(&cfg).expect("load run");
        out.row(vec![
            cfg.mode.as_str().to_string(),
            cfg.conns.to_string(),
            cfg.queries.to_string(),
            f(report.throughput_qps),
            report.p50_us.to_string(),
            report.p95_us.to_string(),
            report.p99_us.to_string(),
            report.busy.to_string(),
        ]);
        if matches!(mode, LoadMode::Closed) {
            trajectory = Some((cfg, report));
        }
    }
    server.join();

    // The fixed load point tracked across PRs.
    if let Some((cfg, report)) = trajectory {
        let path = "BENCH_serve.json";
        match sg_serve::append_bench_json(path, &cfg, &report) {
            Ok(()) => eprintln!("[serve] appended trajectory entry to {path}"),
            Err(e) => eprintln!("[serve] could not write {path}: {e}"),
        }
    }
    vec![out]
}

// ------------------------------------------------------------- Spans

/// The `spans` figure: where a request's time goes, stage by stage. Runs
/// a traced closed-loop load against an embedded server with the flight
/// recorder on (every request carries a `trace_id`), then aggregates the
/// recorder's spans per instrumentation site into `results/spans.csv`.
fn spans(opts: &Opts) -> Vec<Table> {
    use sg_exec::{ExecConfig, Partitioner, ShardedExecutor};
    use sg_obs::span;
    use sg_serve::{LoadConfig, LoadMode, ServeConfig, Server, Workload};
    use std::collections::BTreeMap;

    let d = scaled(50_000, opts.scale);
    let queries = (opts.queries * 5).max(500);
    eprintln!(
        "[spans] flight-recorder span profile, {queries} traced queries on {}…",
        dataset_name(8, 4, d)
    );
    let pool = PatternPool::new(BasketParams::standard(8, 4), SEED);
    let ds = pool.dataset(d, SEED);
    let data = pairs_of(&ds);
    let exec = Arc::new(
        ShardedExecutor::build(
            ds.n_items,
            &data,
            &ExecConfig {
                shards: 4,
                partitioner: Partitioner::SignatureClustered,
                page_size: PAGE_SIZE,
                pool_frames: POOL_FRAMES,
                ..ExecConfig::default()
            },
        )
        .expect("executor config"),
    );
    // Rings are sized lazily per recording thread: raise the capacity
    // before the server's threads record anything, so the whole run fits
    // and the aggregate is not just the tail of the ring.
    span::set_ring_capacity(4 * queries.next_power_of_two());
    span::set_enabled(true);
    let server = Server::start(
        exec,
        Arc::new(Registry::new()),
        ServeConfig {
            admin_addr: None,
            ..ServeConfig::default()
        },
    )
    .expect("start embedded server");

    let cfg = LoadConfig {
        addr: server.local_addr().to_string(),
        conns: 4,
        queries,
        nbits: ds.n_items,
        query_items: 8,
        workload: Workload::Mix,
        mode: LoadMode::Closed,
        trace_sample: 1,
        ..LoadConfig::default()
    };
    let report = sg_serve::run_load(&cfg).expect("load run");
    server.join();
    span::set_enabled(false);
    eprintln!(
        "[spans] {} of {} responses echoed their trace_id",
        report.traced, report.sent
    );

    let mut by_stage: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for s in span::flight_spans() {
        by_stage.entry(s.name).or_default().push(s.dur_ns);
    }
    let mut out = Table::new(
        "spans",
        "Request anatomy: per-stage span durations over a traced load run (T8.I4)",
        &["stage", "count", "mean us", "p50 us", "p99 us"],
    );
    let us = |ns: u64| f(ns as f64 / 1_000.0);
    for (stage, mut durs) in by_stage {
        durs.sort_unstable();
        let mean = durs.iter().sum::<u64>() / durs.len() as u64;
        let pct = |p: f64| durs[((durs.len() - 1) as f64 * p) as usize];
        out.row(vec![
            stage.to_string(),
            durs.len().to_string(),
            us(mean),
            us(pct(0.50)),
            us(pct(0.99)),
        ]);
    }
    vec![out]
}

// ------------------------------------------------------------- Ingest

/// The `ingest` figure: durable write throughput of the sharded
/// executor's WAL path against group-commit batch size and fsync policy,
/// plus the recovery (replay) rate a crash would pay. The fixed
/// `(always, 256)` point also appends a perf-trajectory entry to
/// `BENCH_ingest.json`.
fn ingest(opts: &Opts) -> Vec<Table> {
    use sg_bench::workloads::crash_ops;
    use sg_exec::{DurabilityConfig, ExecConfig, FsyncPolicy, Partitioner, ShardedExecutor};
    use sg_obs::json::Json;

    const NBITS: u32 = 256;
    const SHARDS: usize = 4;
    eprintln!("[ingest] durable write path, {SHARDS} shards…");

    let mut out = Table::new(
        "ingest",
        "Durable ingest: WAL group-commit throughput and replay rate",
        &[
            "fsync",
            "batch",
            "ops",
            "writes/s",
            "wal MB",
            "replay rec/s",
            "recovered",
        ],
    );
    let mut trajectory: Option<(f64, f64)> = None;
    for fsync in [FsyncPolicy::Always, FsyncPolicy::OsOnly] {
        for batch in [1usize, 32, 256] {
            // A per-op fsync is orders of magnitude slower; shrink its
            // op count so the figure stays a quick pass.
            let n_ops = if matches!(fsync, FsyncPolicy::Always) && batch == 1 {
                scaled(2_000, opts.scale)
            } else {
                scaled(20_000, opts.scale)
            };
            let ops = crash_ops(NBITS, n_ops, SEED);
            let dir = std::env::temp_dir().join(format!(
                "sg-repro-ingest-{}-{batch}-{:?}",
                std::process::id(),
                fsync
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let config = ExecConfig {
                shards: SHARDS,
                partitioner: Partitioner::RoundRobin,
                page_size: PAGE_SIZE,
                pool_frames: POOL_FRAMES,
                ..ExecConfig::default()
            };
            let durability = DurabilityConfig {
                dir: dir.clone(),
                fsync,
                storage: sg_exec::StorageMode::Heap,
            };
            let exec = ShardedExecutor::open_durable(NBITS, &config, &durability)
                .expect("open durable executor");
            let registry = Registry::new();
            let obs = exec.register_ingest_obs(&registry, "ingest");

            let t0 = Instant::now();
            for chunk in ops.chunks(batch) {
                for ack in exec.write_batch(chunk.to_vec()) {
                    ack.expect("ingest op");
                }
            }
            let write_secs = t0.elapsed().as_secs_f64();
            let wal_mb = obs.wal_bytes.get() as f64 / (1024.0 * 1024.0);
            drop(exec); // no checkpoint: reopen pays the full WAL replay

            let t0 = Instant::now();
            let exec = ShardedExecutor::open_durable(NBITS, &config, &durability)
                .expect("reopen durable executor");
            let replay_secs = t0.elapsed().as_secs_f64().max(1e-9);
            let report = exec.recovery().expect("durable reopen has a report");
            let writes_per_s = n_ops as f64 / write_secs.max(1e-9);
            let replay_per_s = report.replayed as f64 / replay_secs;
            out.row(vec![
                match fsync {
                    FsyncPolicy::Always => "always".to_string(),
                    FsyncPolicy::OsOnly => "os".to_string(),
                },
                batch.to_string(),
                n_ops.to_string(),
                f(writes_per_s),
                f(wal_mb),
                f(replay_per_s),
                exec.len().to_string(),
            ]);
            if matches!(fsync, FsyncPolicy::Always) && batch == 256 {
                trajectory = Some((writes_per_s, replay_per_s));
            }
            drop(exec);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // The fixed ingest point tracked across PRs.
    if let Some((writes_per_s, replay_per_s)) = trajectory {
        let path = "BENCH_ingest.json";
        let mut entries = match std::fs::read_to_string(path) {
            Ok(text) => match sg_obs::json::parse(&text) {
                Ok(Json::Arr(entries)) => entries,
                _ => Vec::new(),
            },
            Err(_) => Vec::new(),
        };
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        entries.push(Json::Obj(vec![
            ("unix_ms".into(), Json::U64(unix_ms)),
            ("fsync".into(), Json::Str("always".into())),
            ("batch".into(), Json::U64(256)),
            ("writes_per_s".into(), Json::F64(writes_per_s)),
            ("replay_per_s".into(), Json::F64(replay_per_s)),
        ]));
        match std::fs::write(path, Json::Arr(entries).to_string_pretty()) {
            Ok(()) => eprintln!("[ingest] appended trajectory entry to {path}"),
            Err(e) => eprintln!("[ingest] could not write {path}: {e}"),
        }
    }
    vec![out]
}

// ------------------------------------------------------------ Restart

/// The `restart` figure: reopen time as a function of ingested volume,
/// heap vs mmap storage. Both modes checkpoint before closing — the
/// production restart scenario — so the WAL tail is the same small
/// constant on both sides. What differs is what the checkpoint *is*: the
/// heap executor reloads and re-inserts every snapshot record (linear in
/// N), while the mmap store maps its committed pages and replays only the
/// tail (flat in N). The largest point of each curve is appended to
/// `BENCH_restart.json` as the cross-PR trajectory.
fn restart(opts: &Opts) -> Vec<Table> {
    use sg_bench::workloads::crash_ops;
    use sg_exec::{DurabilityConfig, ExecConfig, Partitioner, ShardedExecutor, StorageMode};
    use sg_obs::json::Json;

    const NBITS: u32 = 256;
    const SHARDS: usize = 4;
    const TAIL_OPS: usize = 64;
    eprintln!("[restart] reopen cost vs ingested ops, heap replay vs mmap pages…");

    let mut out = Table::new(
        "restart",
        "Restart: reopen time after checkpointing N ops (heap replays the snapshot, mmap maps it)",
        &[
            "ops",
            "storage",
            "open ms",
            "snapshot",
            "wal tail",
            "recovered",
        ],
    );
    // (ops, heap_ms, mmap_ms) at the largest point, for the trajectory.
    let mut largest: Option<(usize, f64, f64)> = None;
    let sizes: Vec<usize> = [4_000usize, 16_000, 64_000]
        .iter()
        .map(|&n| scaled(n, opts.scale).max(TAIL_OPS + 1))
        .collect();
    for &n_ops in &sizes {
        let ops = crash_ops(NBITS, n_ops, SEED ^ 0xEE);
        let mut point = (n_ops, 0.0f64, 0.0f64);
        for storage in [StorageMode::Heap, StorageMode::Mmap] {
            let dir = std::env::temp_dir().join(format!(
                "sg-repro-restart-{}-{n_ops}-{}",
                std::process::id(),
                storage.as_str()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let config = ExecConfig {
                shards: SHARDS,
                partitioner: Partitioner::RoundRobin,
                page_size: PAGE_SIZE,
                pool_frames: POOL_FRAMES,
                ..ExecConfig::default()
            };
            let durability = DurabilityConfig::os_only(&dir).storage(storage);
            let exec = ShardedExecutor::open_durable(NBITS, &config, &durability)
                .expect("open durable executor");
            // Bulk of the volume lands before the checkpoint; a fixed-size
            // tail stays in the WAL so both modes replay the same few
            // records on reopen.
            for chunk in ops[..n_ops - TAIL_OPS].chunks(256) {
                for ack in exec.write_batch(chunk.to_vec()) {
                    ack.expect("restart ingest op");
                }
            }
            exec.checkpoint().expect("checkpoint before close");
            for chunk in ops[n_ops - TAIL_OPS..].chunks(256) {
                for ack in exec.write_batch(chunk.to_vec()) {
                    ack.expect("restart tail op");
                }
            }
            drop(exec);

            let t0 = Instant::now();
            let exec = ShardedExecutor::open_durable(NBITS, &config, &durability)
                .expect("reopen durable executor");
            let open_ms = t0.elapsed().as_secs_f64() * 1e3;
            let report = exec.recovery().expect("durable reopen has a report");
            out.row(vec![
                n_ops.to_string(),
                storage.as_str().to_string(),
                f(open_ms),
                report.snapshot_entries.to_string(),
                report.wal_records.to_string(),
                exec.len().to_string(),
            ]);
            match storage {
                StorageMode::Heap => point.1 = open_ms,
                StorageMode::Mmap => point.2 = open_ms,
            }
            drop(exec);
            let _ = std::fs::remove_dir_all(&dir);
        }
        largest = Some(point);
    }

    // The fixed restart point tracked across PRs: reopen latency for both
    // modes at the largest volume, plus the heap/mmap ratio the "flat vs
    // linear" claim rides on.
    if let Some((n_ops, heap_ms, mmap_ms)) = largest {
        let path = "BENCH_restart.json";
        let mut entries = match std::fs::read_to_string(path) {
            Ok(text) => match sg_obs::json::parse(&text) {
                Ok(Json::Arr(entries)) => entries,
                _ => Vec::new(),
            },
            Err(_) => Vec::new(),
        };
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        entries.push(Json::Obj(vec![
            ("unix_ms".into(), Json::U64(unix_ms)),
            ("ops".into(), Json::U64(n_ops as u64)),
            ("wal_tail".into(), Json::U64(TAIL_OPS as u64)),
            ("heap_open_ms".into(), Json::F64(heap_ms)),
            ("mmap_open_ms".into(), Json::F64(mmap_ms)),
            (
                "heap_over_mmap".into(),
                Json::F64(heap_ms / mmap_ms.max(1e-9)),
            ),
        ]));
        match std::fs::write(path, Json::Arr(entries).to_string_pretty()) {
            Ok(()) => eprintln!("[restart] appended trajectory entry to {path}"),
            Err(e) => eprintln!("[restart] could not write {path}: {e}"),
        }
    }
    vec![out]
}

// ------------------------------------------------------------- Health

/// The `health` figure: how signature saturation and the paper's §3
/// false-drop estimate degrade as ingest volume grows, from
/// [`SgTree::health_report`] at geometric checkpoints of one long insert
/// stream. Directory signatures are ORs of their subtrees, so every
/// insert can only set more bits: the figure shows pruning power decay
/// with volume, which is exactly what `/debug/tree` watches in a live
/// server.
fn health(opts: &Opts) -> Vec<Table> {
    let pool = PatternPool::new(BasketParams::standard(10, 6), SEED);
    let rows_max = scaled(50_000, opts.scale).max(100);
    let ds = pool.dataset(rows_max, SEED);
    let data = pairs_of(&ds);
    eprintln!(
        "[health] saturation vs ingest volume, {rows_max} rows, {} bits…",
        ds.n_items
    );

    let mut out = Table::new(
        "health",
        "Index health: signature saturation and estimated false-drop vs ingest volume",
        &[
            "rows",
            "height",
            "nodes",
            "leaf sat",
            "dir sat",
            "max sat",
            "est false drop",
            "status",
            "findings",
        ],
    );
    let mut tree = SgTree::create(
        Arc::new(MemStore::new(PAGE_SIZE)),
        TreeConfig::new(ds.n_items).pool_frames(POOL_FRAMES),
    )
    .expect("tree config");
    let mut checkpoints: Vec<usize> = [1_000, 2_000, 5_000, 10_000, 20_000, 50_000]
        .iter()
        .map(|&r| scaled(r, opts.scale))
        .filter(|&r| r > 0 && r < rows_max)
        .collect();
    checkpoints.push(rows_max);
    checkpoints.dedup();
    let mut next = 0usize;
    for (i, (tid, sig)) in data.iter().enumerate() {
        tree.insert(*tid, sig);
        if next < checkpoints.len() && i + 1 == checkpoints[next] {
            next += 1;
            let r = tree.health_report();
            // Directory levels are where saturation costs pruning power;
            // report the worst of them next to the leaf baseline.
            let dirs = &r.levels[1..];
            let dir_sat = dirs.iter().map(|l| l.avg_saturation).fold(0.0, f64::max);
            let max_sat = dirs.iter().map(|l| l.max_saturation).fold(0.0, f64::max);
            let fd = dirs.iter().map(|l| l.est_false_drop).fold(0.0, f64::max);
            out.row(vec![
                (i + 1).to_string(),
                r.height.to_string(),
                r.nodes.to_string(),
                f(r.levels[0].avg_saturation),
                f(dir_sat),
                f(max_sat),
                f(fd),
                r.status().to_string(),
                r.findings.len().to_string(),
            ]);
        }
    }
    vec![out]
}

/// `kernels` — visit-kernel throughput, swept over signature width ×
/// density × kernel variant. Each point builds one node of synthetic
/// entries at the given width and fill fraction, encodes it the way the
/// tree stores it (per-entry sparse/raw choice, so the node lands in
/// whichever SoA representation the density dictates), then times the
/// directory-visit sweep — every entry's `mindist` plus its cached
/// weight — under each compiled-in kernel. `x vs scalar` is the per-point
/// speedup; the `repr` column shows where the layout flips from dense
/// lanes to galloping position lists.
fn kernels_fig(opts: &Opts) -> Vec<Table> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sg_sig::kernels;

    const FANOUT: usize = 64;
    let sweeps = scaled(2_000, opts.scale).max(50);
    eprintln!("[kernels] width × density × variant sweep, {sweeps} visits/point…");

    let mut out = Table::new(
        "kernels",
        "Visit kernels: ns per directory visit by signature width, density, and kernel",
        &[
            "nbits",
            "density",
            "repr",
            "kernel",
            "decode ns",
            "ns/visit",
            "ns/entry",
            "x vs scalar",
        ],
    );
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x4B52_4E4C); // "KRNL"
    for &nbits in &[128u32, 512, 2_048, 8_192] {
        for &density in &[0.01f64, 0.05, 0.25] {
            let fill = ((nbits as f64 * density) as usize).max(1);
            let mut draw = |n: usize| {
                let items: Vec<u32> = (0..n).map(|_| rng.gen_range(0..nbits)).collect();
                Signature::from_items(nbits, &items)
            };
            let mut node = Node::new(1);
            for i in 0..FANOUT {
                node.entries.push(Entry::new(draw(fill), i as u64));
            }
            let page_size = node.encoded_size(true).next_power_of_two().max(PAGE_SIZE);
            let page = node.encode(page_size, true);
            let soa = SoaNode::decode(nbits, &page);
            let repr = if soa.is_sparse() { "sparse" } else { "dense" };
            // Decode cost is kernel-independent but dominates one-shot
            // visits (the tree decodes each page it reads), and it is where
            // the sparse representation pays off: no lane materialisation.
            let t0 = Instant::now();
            for _ in 0..sweeps {
                std::hint::black_box(SoaNode::decode(nbits, &page));
            }
            let decode_ns = t0.elapsed().as_nanos() as u64 / sweeps as u64;
            let probe = QueryProbe::new(&draw(fill));
            let metric = Metric::hamming();
            let mut scalar_ns = 0u64;
            for &kind in kernels::variants() {
                kernels::force(kind);
                // Warmup, then time `sweeps` full-node visits.
                let mut acc = 0u64;
                for _ in 0..sweeps / 10 + 1 {
                    for i in 0..soa.len() {
                        acc = acc.wrapping_add(soa.mindist(i, &probe, &metric).to_bits());
                    }
                }
                let t0 = Instant::now();
                for _ in 0..sweeps {
                    for i in 0..soa.len() {
                        acc = acc
                            .wrapping_add(soa.mindist(i, &probe, &metric).to_bits())
                            .wrapping_add(soa.weight(i) as u64);
                    }
                }
                let ns = t0.elapsed().as_nanos() as u64 / sweeps as u64;
                std::hint::black_box(acc);
                if kind == kernels::KernelKind::Scalar {
                    scalar_ns = ns;
                }
                out.row(vec![
                    nbits.to_string(),
                    f(density),
                    repr.to_string(),
                    kind.name().to_string(),
                    decode_ns.to_string(),
                    ns.to_string(),
                    (ns / FANOUT as u64).to_string(),
                    f(scalar_ns as f64 / ns.max(1) as f64),
                ]);
            }
        }
    }
    vec![out]
}

/// `profile` — cost-model calibration: train the per-kind EWMA cost
/// model on live traffic, freeze its estimates, then check them against
/// a fresh measurement run. The span-stack profiler samples the whole
/// workload so the run also smoke-tests continuous profiling at a
/// production rate. Writes `costmodel.csv`.
fn profile_fig(opts: &Opts) -> Vec<Table> {
    use sg_exec::{ExecConfig, Partitioner, QueryRequest, ShardedExecutor};
    use sg_obs::{prof, CostModel};
    use sg_tree::QueryOptions;

    let d = scaled(50_000, opts.scale);
    let per_kind = (opts.queries * 2).max(200);
    eprintln!(
        "[profile] cost-model calibration, {per_kind} queries/kind on {} rows, \
         profiler at 199 Hz…",
        d
    );
    let pool = PatternPool::new(BasketParams::standard(8, 4), SEED);
    let ds = pool.dataset(d, SEED);
    let data = pairs_of(&ds);
    let exec = ShardedExecutor::build(
        ds.n_items,
        &data,
        &ExecConfig {
            shards: 4,
            partitioner: Partitioner::SignatureClustered,
            page_size: PAGE_SIZE,
            pool_frames: POOL_FRAMES,
            ..ExecConfig::default()
        },
    )
    .expect("executor config");
    let queries: Vec<Signature> = pool
        .queries(64, SEED)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    let request = |kind: &str, q: &Signature| match kind {
        "knn" => QueryRequest::Knn {
            q: q.clone(),
            k: 10,
            metric: Metric::hamming(),
        },
        "range" => QueryRequest::Range {
            q: q.clone(),
            eps: 4.0,
            metric: Metric::hamming(),
        },
        "containing" => QueryRequest::Containing { q: q.clone() },
        "contained_in" => QueryRequest::ContainedIn { q: q.clone() },
        "exact" => QueryRequest::Exact { q: q.clone() },
        other => unreachable!("kind {other}"),
    };
    const KINDS: [&str; 5] = ["knn", "range", "containing", "contained_in", "exact"];

    prof::clear();
    prof::start(199);

    // Calibration: feed the global model `per_kind` observations of each
    // query kind; the EWMAs converge well inside that (alpha 0.1).
    let model = CostModel::global();
    for kind in KINDS {
        for (i, q) in queries.iter().cycle().take(per_kind).enumerate() {
            let _ = i;
            exec.query(&request(kind, q), &QueryOptions::default())
                .expect("calibration query");
        }
    }

    // Freeze the estimates, then measure a fresh run of the same mix.
    // `estimate` keeps learning during the check, so the frozen copies
    // are what a planner would actually have had at decision time.
    let frozen: Vec<(&str, u64, sg_obs::CostStats)> = KINDS
        .iter()
        .map(|&kind| {
            let stats = model.stats("exec", kind).expect("calibrated cell");
            (kind, stats.est_ns.round() as u64, stats)
        })
        .collect();

    let mut out = Table::new(
        "costmodel",
        "Cost model: frozen per-kind EWMA estimates vs a fresh measured run",
        &[
            "kind",
            "calls",
            "ewma visits",
            "ewma lane ops",
            "ewma kB dec",
            "est us",
            "meas us",
            "rel err %",
        ],
    );
    let check = per_kind.max(100);
    let mut errs: Vec<f64> = Vec::new();
    for (kind, est_ns, stats) in &frozen {
        let t0 = Instant::now();
        for q in queries.iter().cycle().take(check) {
            std::hint::black_box(
                exec.query(&request(kind, q), &QueryOptions::default())
                    .expect("check query"),
            );
        }
        let measured_ns = t0.elapsed().as_nanos() as u64 / check as u64;
        let rel = if measured_ns > 0 {
            100.0 * (*est_ns as f64 - measured_ns as f64).abs() / measured_ns as f64
        } else {
            0.0
        };
        errs.push(rel);
        out.row(vec![
            kind.to_string(),
            stats.count.to_string(),
            f(stats.visits),
            f(stats.lane_ops),
            f(stats.bytes_decoded / 1024.0),
            f(*est_ns as f64 / 1_000.0),
            f(measured_ns as f64 / 1_000.0),
            f(rel),
        ]);
    }
    let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
    out.row(vec![
        "mean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        f(mean_err),
    ]);

    prof::stop();
    let profile = prof::snapshot();
    let top: Vec<String> = prof::self_weights(&profile)
        .into_iter()
        .take(3)
        .map(|(name, c)| format!("{name} ({} samples)", c.samples))
        .collect();
    eprintln!(
        "[profile] mean calibration error {mean_err:.1}% | {} ticks, {} stacks, hot: {}",
        prof::ticks(),
        profile.len(),
        if top.is_empty() {
            "none".to_string()
        } else {
            top.join(", ")
        }
    );
    if mean_err > 30.0 {
        eprintln!("[profile] WARNING: mean calibration error above the 30% acceptance bound");
    }
    prof::clear();
    vec![out]
}
