//! Helper binary for `tests/crash_recovery.rs`: opens a durable
//! [`ShardedExecutor`] and applies a deterministic op stream one write at
//! a time, printing `ack <index> <lsn>` to stdout after each acknowledged
//! (WAL-fsynced) op. The parent test reads those lines, SIGKILLs this
//! process at an arbitrary point, reopens the directory, and checks the
//! recovered state against the acked-prefix oracle.
//!
//! ```text
//! crash_ingest_child DIR NBITS SHARDS N_OPS SEED STORAGE CKPT_EVERY
//! ```
//!
//! `STORAGE` is `heap` or `mmap` (what the WAL checkpoints into);
//! `CKPT_EVERY` > 0 checkpoints after every that-many acked ops, so a
//! SIGKILL can land *during* a checkpoint — the meta-flip / snapshot-
//! rename atomicity the recovery tests exist to probe.
//!
//! The op stream for `(NBITS, N_OPS, SEED)` is shared with the parent via
//! [`sg_bench::workloads::crash_ops`], so both sides agree byte-for-byte
//! on what op `i` is.

use sg_bench::workloads::crash_ops;
use sg_exec::{DurabilityConfig, ExecConfig, Partitioner, ShardedExecutor, StorageMode};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 7 {
        eprintln!("usage: crash_ingest_child DIR NBITS SHARDS N_OPS SEED STORAGE CKPT_EVERY");
        std::process::exit(2);
    }
    let dir = &args[0];
    let nbits: u32 = args[1].parse().expect("NBITS");
    let shards: usize = args[2].parse().expect("SHARDS");
    let n_ops: usize = args[3].parse().expect("N_OPS");
    let seed: u64 = args[4].parse().expect("SEED");
    let storage = StorageMode::parse(&args[5]).expect("STORAGE is heap|mmap");
    let ckpt_every: usize = args[6].parse().expect("CKPT_EVERY");

    let exec = ShardedExecutor::open_durable(
        nbits,
        &ExecConfig {
            shards,
            partitioner: Partitioner::RoundRobin,
            ..ExecConfig::default()
        },
        &DurabilityConfig::new(dir).storage(storage),
    )
    .expect("open durable executor");

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (i, op) in crash_ops(nbits, n_ops, seed).into_iter().enumerate() {
        // An op the oracle knows is a no-op (duplicate insert, delete of
        // an absent tid) still acks with `applied: false`; only hard
        // errors abort the stream.
        let ack = exec.write_batch(vec![op]).pop().unwrap().expect("write op");
        // The ack line is the durability promise the parent holds us to:
        // it must not be emitted before the WAL fsync (write_batch has
        // already synced by the time it returns).
        writeln!(out, "ack {i} {}", ack.lsn.unwrap_or(0)).expect("stdout");
        out.flush().expect("stdout flush");
        if ckpt_every > 0 && (i + 1) % ckpt_every == 0 {
            // Checkpoint *after* the ack is on the wire so the parent can
            // aim its SIGKILL at a window where a checkpoint is likely
            // in flight.
            exec.checkpoint().expect("checkpoint");
        }
    }
}
