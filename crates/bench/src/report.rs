//! Output formatting: aligned console tables and CSV files under
//! `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A rectangular results table: header plus rows of cells.
pub struct Table {
    /// Experiment id, e.g. `fig5`.
    pub name: String,
    /// Human title, e.g. the figure caption.
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given column header.
    pub fn new(name: &str, title: &str, header: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.name, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (no quoting needed: cells are numeric or
    /// simple labels).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV into `dir/<name>.csv` and returns the path.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a float with sensible experiment precision.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("fig0", "demo", &["x", "tree", "table"]);
        t.row(vec!["10".into(), "1.50".into(), "3.00".into()]);
        t.row(vec!["20".into(), "2.00".into(), "6.25".into()]);
        let r = t.render();
        assert!(r.contains("fig0"));
        assert!(r.contains("1.50"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("x,tree,table"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("a", "b", &["x"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.4), "1234");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(0.1234), "0.1234");
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join(format!("sg-report-{}", std::process::id()));
        let mut t = Table::new("unit", "demo", &["a"]);
        t.row(vec!["1".into()]);
        let path = t.save_csv(&dir).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
