//! Query-workload measurement: the paper's three metrics, averaged.

use crate::workloads::Instance;
use sg_sig::{Metric, Signature};
use sg_tree::QueryStats;
use std::time::Instant;

/// Which query each measurement runs.
#[derive(Debug, Clone, Copy)]
pub enum QueryKind {
    /// `k`-nearest neighbors.
    Knn(usize),
    /// Similarity range with threshold ε.
    Range(f64),
}

/// Averaged costs of one index over one query workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Avg {
    /// Percent of the indexed transactions compared with the query.
    pub pct_data: f64,
    /// Mean wall-clock milliseconds per query.
    pub time_ms: f64,
    /// Mean random I/Os (cold-cache page reads) per query.
    pub ios: f64,
    /// Mean nodes/pages accessed per query.
    pub pages: f64,
    /// Mean result-set size.
    pub results: f64,
    /// Mean distance of the farthest reported neighbor (the NN distance
    /// for k=1) — Figure 12 buckets queries by this.
    pub worst_dist: f64,
    /// Buffer-pool hit rate over the whole workload (hits / logical
    /// reads); near 0 here because the harness clears caches per query.
    pub hit_rate: f64,
}

struct Accum {
    stats: QueryStats,
    time: f64,
    results: u64,
    worst: f64,
    n: u64,
}

impl Accum {
    fn new() -> Self {
        Accum {
            stats: QueryStats::default(),
            time: 0.0,
            results: 0,
            worst: 0.0,
            n: 0,
        }
    }

    fn push(&mut self, stats: &QueryStats, secs: f64, results: &[sg_tree::Neighbor]) {
        self.stats.add(stats);
        self.time += secs;
        self.results += results.len() as u64;
        self.worst += results.last().map_or(0.0, |n| n.dist);
        self.n += 1;
    }

    fn avg(&self, dataset_len: u64) -> Avg {
        let n = self.n.max(1) as f64;
        Avg {
            pct_data: 100.0 * self.stats.data_compared as f64 / n / dataset_len.max(1) as f64,
            time_ms: 1000.0 * self.time / n,
            ios: self.stats.io.physical_reads as f64 / n,
            pages: self.stats.nodes_accessed as f64 / n,
            results: self.results as f64 / n,
            worst_dist: self.worst / n,
            hit_rate: self.stats.hit_rate(),
        }
    }
}

/// A tree-vs-table measurement over one workload.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// The SG-tree's averaged costs.
    pub tree: Avg,
    /// The SG-table's averaged costs.
    pub table: Avg,
}

/// Runs `kind` for every query on both indexes with cold caches and
/// returns the averaged costs. The scan baseline is consulted in debug
/// builds to assert both indexes return exact results.
pub fn compare(
    inst: &Instance,
    queries: &[Signature],
    kind: QueryKind,
    metric: &Metric,
) -> Comparison {
    let mut tree_acc = Accum::new();
    let mut table_acc = Accum::new();
    for q in queries {
        // Cold cache per query: the paper counts *random I/Os* for a query
        // arriving on an idle system.
        inst.tree.pool().clear();
        inst.tree.pool().stats().reset();
        let t0 = Instant::now();
        let (res, stats) = match kind {
            QueryKind::Knn(k) => inst.tree.knn(q, k, metric),
            QueryKind::Range(eps) => inst.tree.range(q, eps, metric),
        };
        tree_acc.push(&stats, t0.elapsed().as_secs_f64(), &res);
        debug_assert!(exact_vs_scan(inst, q, kind, metric, &res));

        inst.table.pool().clear();
        inst.table.pool().stats().reset();
        let t0 = Instant::now();
        let (res, stats) = match kind {
            QueryKind::Knn(k) => inst.table.knn(q, k, metric),
            QueryKind::Range(eps) => inst.table.range(q, eps, metric),
        };
        table_acc.push(&stats, t0.elapsed().as_secs_f64(), &res);
        debug_assert!(exact_vs_scan(inst, q, kind, metric, &res));
    }
    Comparison {
        tree: tree_acc.avg(inst.data.len() as u64),
        table: table_acc.avg(inst.data.len() as u64),
    }
}

/// Ground-truth check used under `debug_assertions`.
fn exact_vs_scan(
    inst: &Instance,
    q: &Signature,
    kind: QueryKind,
    metric: &Metric,
    got: &[sg_tree::Neighbor],
) -> bool {
    let want = match kind {
        QueryKind::Knn(k) => inst.scan.knn(q, k, metric).0,
        QueryKind::Range(eps) => inst.scan.range(q, eps, metric).0,
    };
    let gd: Vec<f64> = got.iter().map(|n| n.dist).collect();
    let wd: Vec<f64> = want.iter().map(|n| n.dist).collect();
    gd == wd
}

/// Measures only the tree (used by experiments without a table baseline,
/// e.g. ablations).
pub fn measure_tree(
    inst: &Instance,
    queries: &[Signature],
    kind: QueryKind,
    metric: &Metric,
) -> Avg {
    let mut acc = Accum::new();
    for q in queries {
        inst.tree.pool().clear();
        inst.tree.pool().stats().reset();
        let t0 = Instant::now();
        let (res, stats) = match kind {
            QueryKind::Knn(k) => inst.tree.knn(q, k, metric),
            QueryKind::Range(eps) => inst.tree.range(q, eps, metric),
        };
        acc.push(&stats, t0.elapsed().as_secs_f64(), &res);
    }
    acc.avg(inst.data.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::basket_instance;
    use sg_tree::SplitPolicy;

    #[test]
    fn compare_produces_sane_averages() {
        let (inst, queries) = basket_instance(8, 4, 2000, 10, SplitPolicy::MinLink);
        let m = Metric::hamming();
        let c = compare(&inst, &queries, QueryKind::Knn(1), &m);
        for avg in [c.tree, c.table] {
            assert!(avg.pct_data > 0.0 && avg.pct_data <= 100.0, "{avg:?}");
            assert!(avg.ios >= 1.0);
            assert_eq!(avg.results, 1.0);
            assert!((0.0..=1.0).contains(&avg.hit_rate), "{avg:?}");
        }
        // Both exact: same NN distance on average.
        assert!((c.tree.worst_dist - c.table.worst_dist).abs() < 1e-9);
    }

    #[test]
    fn range_comparison_counts_results() {
        let (inst, queries) = basket_instance(8, 4, 1500, 5, SplitPolicy::MinLink);
        let m = Metric::hamming();
        let c = compare(&inst, &queries, QueryKind::Range(6.0), &m);
        assert!(
            (c.tree.results - c.table.results).abs() < 1e-9,
            "exact methods agree"
        );
    }
}
