//! Dataset, index, and query construction for the experiments.

use sg_pager::MemStore;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_quest::census::{CensusGenerator, CensusParams, Schema};
use sg_quest::Dataset;
use sg_sig::Signature;
use sg_table::{SgTable, TableParams};
use sg_tree::{ScanIndex, SgTree, SplitPolicy, Tid, TreeConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// When set (see [`enable_obs`]), every index built by this module
/// registers its instruments in [`sg_obs::Registry::global`]. Off by
/// default so micro-benchmarks measure the disabled-recorder path.
static OBS: AtomicBool = AtomicBool::new(false);

/// Routes every subsequently built tree/table's metrics into the global
/// registry (used by `repro` to emit a metrics JSON per figure).
pub fn enable_obs() {
    OBS.store(true, Ordering::Relaxed);
}

fn obs_enabled() -> bool {
    OBS.load(Ordering::Relaxed)
}

/// Page size used throughout the experiments (the classic 4 KiB page the
/// paper's "node = disk page" setup implies).
pub const PAGE_SIZE: usize = 4096;

/// Buffer-pool frames given to each index. Generous enough to hold a
/// query's working set; the harness clears the pools before each query so
/// reported I/Os are cold-cache, as in the paper.
pub const POOL_FRAMES: usize = 4096;

/// Base seed for every generator; experiments derive sub-seeds from it.
pub const SEED: u64 = 20030305; // ICDE 2003 :-)

/// A fully-built experimental instance: the data and the three indexes.
pub struct Instance {
    /// Universe size (signature length).
    pub nbits: u32,
    /// `(tid, signature)` pairs, in insertion order.
    pub data: Vec<(Tid, Signature)>,
    /// The SG-tree under test.
    pub tree: SgTree,
    /// The SG-table baseline.
    pub table: SgTable,
    /// The sequential-scan ground truth.
    pub scan: ScanIndex,
    /// Wall-clock seconds to build the tree (all inserts).
    pub tree_build_secs: f64,
    /// Wall-clock seconds to build the table (clustering + hashing).
    pub table_build_secs: f64,
}

/// Converts a [`Dataset`] into `(tid, signature)` pairs.
pub fn pairs_of(ds: &Dataset) -> Vec<(Tid, Signature)> {
    ds.transactions
        .iter()
        .enumerate()
        .map(|(tid, t)| (tid as Tid, Signature::from_items(ds.n_items, t)))
        .collect()
}

/// Builds an SG-tree (default config unless overridden) over `data`.
pub fn build_tree(
    nbits: u32,
    data: &[(Tid, Signature)],
    config: Option<TreeConfig>,
) -> (SgTree, f64) {
    let cfg = config
        .unwrap_or_else(|| TreeConfig::new(nbits))
        .pool_frames(POOL_FRAMES);
    let mut tree = SgTree::create(Arc::new(MemStore::new(PAGE_SIZE)), cfg).expect("tree config");
    if obs_enabled() {
        tree.register_obs(sg_obs::Registry::global(), "sg_tree");
    }
    let t0 = Instant::now();
    for (tid, sig) in data {
        tree.insert(*tid, sig);
    }
    let secs = t0.elapsed().as_secs_f64();
    (tree, secs)
}

/// Builds an SG-table with the workloads' standard parameters.
pub fn build_table(nbits: u32, data: &[(Tid, Signature)]) -> (SgTable, f64) {
    let params = TableParams {
        k_signatures: 10,
        activation: 2,
        critical_mass: 0.15,
        pool_frames: POOL_FRAMES,
    };
    let t0 = Instant::now();
    let mut table = SgTable::build(Arc::new(MemStore::new(PAGE_SIZE)), nbits, &params, data);
    let secs = t0.elapsed().as_secs_f64();
    if obs_enabled() {
        table.register_obs(sg_obs::Registry::global(), "sg_table");
    }
    (table, secs)
}

/// Builds the scan baseline.
pub fn build_scan(nbits: u32, data: &[(Tid, Signature)]) -> ScanIndex {
    ScanIndex::build(
        Arc::new(MemStore::new(PAGE_SIZE)),
        nbits,
        POOL_FRAMES,
        data.iter().cloned(),
    )
}

/// Builds the full instance for a synthetic `T{t}.I{i}.D{d}` workload plus
/// `n_queries` queries drawn from the same pattern pool (as §5.1 does).
pub fn basket_instance(
    t: u32,
    i: u32,
    d: usize,
    n_queries: usize,
    split: SplitPolicy,
) -> (Instance, Vec<Signature>) {
    let pool = PatternPool::new(BasketParams::standard(t, i), SEED);
    let ds = pool.dataset(d, SEED);
    let queries: Vec<Signature> = pool
        .queries(n_queries, SEED)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    (instance_of(&ds, split), queries)
}

/// Builds the full instance for the CENSUS-shaped categorical workload;
/// queries come from the generator's held-out stream.
pub fn census_instance(
    d: usize,
    n_queries: usize,
    split: SplitPolicy,
) -> (Instance, Vec<Signature>) {
    let gen = CensusGenerator::new(Schema::census(), CensusParams::default(), SEED);
    let ds = gen.dataset(d, SEED);
    let queries: Vec<Signature> = gen
        .queries(n_queries, SEED)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    (instance_of(&ds, split), queries)
}

/// The deterministic write-op stream shared by the crash-recovery test
/// (`tests/crash_recovery.rs`) and its SIGKILLed child process
/// (`crash_ingest_child`): both sides derive op `i` from `(nbits, n_ops,
/// seed)` alone, so the parent can reconstruct exactly what the child was
/// applying when it died.
///
/// The stream is ~70% inserts of fresh tids (so it is valid to apply from
/// an empty index), with deletes and upserts of earlier tids mixed in so
/// recovery is exercised on tombstones and replacements, not just
/// appends.
pub fn crash_ops(nbits: u32, n_ops: usize, seed: u64) -> Vec<sg_exec::WriteOp> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n_ops);
    let mut next_tid: Tid = 0;
    for _ in 0..n_ops {
        let sig_of = |rng: &mut StdRng| {
            let items: Vec<u32> = (0..8).map(|_| rng.gen_range(0..nbits)).collect();
            Signature::from_items(nbits, &items)
        };
        let roll: u32 = rng.gen_range(0..100);
        let op = if roll < 70 || next_tid == 0 {
            let tid = next_tid;
            next_tid += 1;
            sg_exec::WriteOp::Insert {
                tid,
                sig: sig_of(&mut rng),
            }
        } else if roll < 85 {
            sg_exec::WriteOp::Delete {
                tid: rng.gen_range(0..next_tid),
            }
        } else {
            sg_exec::WriteOp::Upsert {
                tid: rng.gen_range(0..next_tid),
                sig: sig_of(&mut rng),
            }
        };
        ops.push(op);
    }
    ops
}

/// Assembles the three indexes over a dataset.
pub fn instance_of(ds: &Dataset, split: SplitPolicy) -> Instance {
    let data = pairs_of(ds);
    let (tree, tree_build_secs) = build_tree(
        ds.n_items,
        &data,
        Some(TreeConfig::new(ds.n_items).split(split)),
    );
    let (table, table_build_secs) = build_table(ds.n_items, &data);
    let scan = build_scan(ds.n_items, &data);
    Instance {
        nbits: ds.n_items,
        data,
        tree,
        table,
        scan,
        tree_build_secs,
        table_build_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_sig::Metric;

    #[test]
    fn basket_instance_builds_consistent_indexes() {
        let (inst, queries) = basket_instance(8, 4, 1500, 5, SplitPolicy::MinLink);
        assert_eq!(inst.tree.len(), 1500);
        assert_eq!(inst.table.len(), 1500);
        assert_eq!(inst.scan.len(), 1500);
        assert_eq!(queries.len(), 5);
        inst.tree.validate();
        // All three agree on a 1-NN distance.
        let m = Metric::hamming();
        for q in &queries {
            let (a, _) = inst.tree.nn(q, &m);
            let (b, _) = inst.table.nn(q, &m);
            let (c, _) = inst.scan.knn(q, 1, &m);
            assert_eq!(a[0].dist, c[0].dist);
            assert_eq!(b[0].dist, c[0].dist);
        }
    }

    #[test]
    fn census_instance_has_fixed_dimensionality() {
        let (inst, queries) = census_instance(1200, 3, SplitPolicy::MinLink);
        assert_eq!(inst.nbits, 525);
        for (_, sig) in inst.data.iter().take(50) {
            assert_eq!(sig.count(), 36);
        }
        for q in &queries {
            assert_eq!(q.count(), 36);
        }
        inst.tree.validate();
    }
}
