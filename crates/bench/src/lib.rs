//! Experiment harness for the SG-tree reproduction.
//!
//! The paper's evaluation (§5) compares the SG-tree against the SG-table on
//! three metrics — *% of data processed*, *CPU time*, and *random I/Os* —
//! across synthetic `T·I·D` market-basket workloads and a CENSUS-shaped
//! categorical dataset. This crate packages the shared machinery:
//!
//! * [`workloads`] — building datasets, indexes, and query sets;
//! * [`measure`] — running a query workload over the three indexes with
//!   cold caches and averaging the paper's metrics;
//! * [`report`] — aligned-table and CSV output.
//!
//! The `repro` binary drives one experiment per paper table/figure; see
//! `repro --help` and EXPERIMENTS.md.

pub mod measure;
pub mod report;
pub mod workloads;

/// Scales a paper-sized cardinality by the harness `--scale` factor
/// (minimum 1000 so every experiment stays meaningful).
pub fn scaled(d: usize, scale: f64) -> usize {
    ((d as f64 * scale) as usize).max(1000)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaled_applies_floor() {
        assert_eq!(super::scaled(200_000, 1.0), 200_000);
        assert_eq!(super::scaled(200_000, 0.1), 20_000);
        assert_eq!(super::scaled(2_000, 0.01), 1_000);
    }
}
