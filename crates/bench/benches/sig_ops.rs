//! Criterion micro-benchmarks for the signature kernel: the bit-parallel
//! operations every tree traversal is made of, and the §3.2 codec.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sg_sig::{codec, Metric, Signature};

fn sig_with(nbits: u32, ones: u32, stride: u32) -> Signature {
    Signature::from_iter(nbits, (0..ones).map(|i| (i * stride) % nbits))
}

fn bench_bit_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("sig_bit_ops");
    for &nbits in &[525u32, 1000] {
        let a = sig_with(nbits, 30, 17);
        let b = sig_with(nbits, 30, 23);
        g.bench_function(format!("hamming_{nbits}"), |bench| {
            bench.iter(|| black_box(a.hamming(black_box(&b))))
        });
        g.bench_function(format!("and_count_{nbits}"), |bench| {
            bench.iter(|| black_box(a.and_count(black_box(&b))))
        });
        g.bench_function(format!("contains_{nbits}"), |bench| {
            bench.iter(|| black_box(a.contains(black_box(&b))))
        });
        g.bench_function(format!("enlargement_{nbits}"), |bench| {
            bench.iter(|| black_box(a.enlargement(black_box(&b))))
        });
        g.bench_function(format!("or_assign_{nbits}"), |bench| {
            bench.iter(|| {
                let mut x = a.clone();
                x.or_assign(black_box(&b));
                black_box(x)
            })
        });
    }
    g.finish();
}

fn bench_mindist(c: &mut Criterion) {
    let mut g = c.benchmark_group("sig_mindist");
    let q = sig_with(1000, 30, 31);
    let entry = sig_with(1000, 400, 3);
    for (label, m) in [
        ("hamming", Metric::hamming()),
        ("jaccard", Metric::jaccard()),
        (
            "hamming_fixed_dim",
            Metric::with_fixed_dim(sg_sig::MetricKind::Hamming, 30),
        ),
    ] {
        g.bench_function(label, |bench| {
            bench.iter(|| black_box(m.mindist(black_box(&q), black_box(&entry))))
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("sig_codec");
    let sparse = sig_with(1000, 20, 47);
    let dense = sig_with(1000, 500, 2);
    let mut buf = Vec::with_capacity(256);
    for (label, sig) in [("sparse20", &sparse), ("dense500", &dense)] {
        g.bench_function(format!("encode_{label}"), |bench| {
            bench.iter(|| {
                buf.clear();
                codec::encode(black_box(sig), &mut buf);
                black_box(buf.len())
            })
        });
        let mut encoded = Vec::new();
        codec::encode(sig, &mut encoded);
        g.bench_function(format!("decode_{label}"), |bench| {
            bench.iter(|| black_box(codec::decode(1000, black_box(&encoded)).unwrap()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bit_ops, bench_mindist, bench_codec
}
criterion_main!(benches);
