//! Criterion macro-benchmarks: index construction and query latency for
//! the SG-tree (per split policy), the SG-table, and the scan baseline on
//! a laptop-scale `T10.I6.D20K` workload. The paper-scale sweeps live in
//! the `repro` binary; these benches track the per-operation costs.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use sg_bench::workloads::{build_scan, build_table, build_tree, pairs_of, PAGE_SIZE, SEED};
use sg_inverted::InvertedIndex;
use sg_minhash::{LshParams, MinHashLsh};
use sg_pager::MemStore;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use sg_tree::{bulkload, SplitPolicy, Tid, TreeConfig};
use std::sync::Arc;

const D: usize = 20_000;

fn workload() -> (Vec<(Tid, Signature)>, Vec<Signature>, u32) {
    let pool = PatternPool::new(BasketParams::standard(10, 6), SEED);
    let ds = pool.dataset(D, SEED);
    let queries: Vec<Signature> = pool
        .queries(64, SEED)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    (pairs_of(&ds), queries, ds.n_items)
}

fn bench_build(c: &mut Criterion) {
    let (data, _, nbits) = workload();
    let mut g = c.benchmark_group("index_build_20k");
    g.sample_size(10);
    for policy in [
        SplitPolicy::Quadratic,
        SplitPolicy::AvLink,
        SplitPolicy::MinLink,
    ] {
        g.bench_function(format!("sg_tree_{}", policy.name()), |b| {
            b.iter_batched(
                || data.clone(),
                |data| {
                    let cfg = TreeConfig::new(nbits).split(policy);
                    black_box(build_tree(nbits, &data, Some(cfg)).0.len())
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.bench_function("sg_tree_bulk_load", |b| {
        b.iter_batched(
            || data.clone(),
            |data| {
                let tree = bulkload::bulk_load(
                    Arc::new(MemStore::new(PAGE_SIZE)),
                    TreeConfig::new(nbits),
                    data,
                    1.0,
                )
                .unwrap();
                black_box(tree.len())
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("sg_table", |b| {
        b.iter_batched(
            || data.clone(),
            |data| black_box(build_table(nbits, &data).0.len()),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("inverted", |b| {
        b.iter_batched(
            || data.clone(),
            |data| {
                black_box(
                    InvertedIndex::build(Arc::new(MemStore::new(PAGE_SIZE)), nbits, 256, &data)
                        .len(),
                )
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("minhash_lsh", |b| {
        b.iter_batched(
            || data.clone(),
            |data| black_box(MinHashLsh::build(nbits, LshParams::default(), &data).len()),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let (data, queries, nbits) = workload();
    let (tree, _) = build_tree(nbits, &data, None);
    let (table, _) = build_table(nbits, &data);
    let scan = build_scan(nbits, &data);
    let m = Metric::hamming();
    let mut qi = 0usize;
    let mut next_q = || {
        qi = (qi + 1) % queries.len();
        &queries[qi]
    };

    let mut g = c.benchmark_group("query_20k");
    g.sample_size(30);
    g.bench_function("nn_sg_tree", |b| {
        b.iter(|| black_box(tree.nn(next_q(), &m)))
    });
    g.bench_function("nn_sg_tree_best_first", |b| {
        b.iter(|| black_box(tree.knn_best_first(next_q(), 1, &m)))
    });
    g.bench_function("nn_sg_table", |b| {
        b.iter(|| black_box(table.nn(next_q(), &m)))
    });
    g.bench_function("nn_scan", |b| {
        b.iter(|| black_box(scan.knn(next_q(), 1, &m)))
    });
    g.bench_function("knn10_sg_tree", |b| {
        b.iter(|| black_box(tree.knn(next_q(), 10, &m)))
    });
    g.bench_function("range4_sg_tree", |b| {
        b.iter(|| black_box(tree.range(next_q(), 4.0, &m)))
    });
    g.bench_function("containment_sg_tree", |b| {
        b.iter(|| black_box(tree.containing(next_q())))
    });
    let inv = InvertedIndex::build(Arc::new(MemStore::new(PAGE_SIZE)), nbits, 256, &data);
    g.bench_function("nn_inverted", |b| {
        b.iter(|| black_box(inv.nn(next_q(), &m)))
    });
    g.bench_function("containment_inverted", |b| {
        b.iter(|| black_box(inv.containing(next_q())))
    });
    let lsh = MinHashLsh::build(nbits, LshParams::default(), &data);
    let mj = Metric::jaccard();
    g.bench_function("knn10_minhash_lsh_approx", |b| {
        b.iter(|| black_box(lsh.knn(next_q(), 10, &mj)))
    });
    g.finish();
}

fn bench_sharded_exec(c: &mut Criterion) {
    use sg_exec::{ExecConfig, Partitioner, QueryRequest, ShardedExecutor};

    let (data, queries, nbits) = workload();
    let m = Metric::jaccard();
    let mut g = c.benchmark_group("sharded_exec_20k");
    g.sample_size(10);
    for shards in [1usize, 4] {
        let exec = ShardedExecutor::build(
            nbits,
            &data,
            &ExecConfig {
                shards,
                partitioner: Partitioner::SignatureClustered,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let batch: Vec<QueryRequest> = queries
            .iter()
            .map(|q| QueryRequest::Knn {
                q: q.clone(),
                k: 10,
                metric: m,
            })
            .collect();
        g.bench_function(format!("knn10_single_{shards}shard"), |b| {
            let mut qi = 0usize;
            b.iter(|| {
                qi = (qi + 1) % queries.len();
                black_box(exec.knn(&queries[qi], 10, &m))
            })
        });
        g.bench_function(format!("knn10_batch64_{shards}shard"), |b| {
            b.iter_batched(
                || batch.clone(),
                |batch| black_box(exec.execute_batch(batch).len()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_insert_delete(c: &mut Criterion) {
    let (data, _, nbits) = workload();
    let mut g = c.benchmark_group("maintenance_20k");
    g.sample_size(10);
    g.bench_function("insert_one_into_20k", |b| {
        let (mut tree, _) = build_tree(nbits, &data, None);
        let mut tid = data.len() as u64;
        b.iter(|| {
            tree.insert(tid, &data[(tid as usize) % data.len()].1);
            tid += 1;
        })
    });
    g.bench_function("delete_insert_cycle_20k", |b| {
        let (mut tree, _) = build_tree(nbits, &data, None);
        let mut i = 0usize;
        b.iter(|| {
            let (tid, sig) = &data[i % data.len()];
            assert!(tree.delete(*tid, sig));
            tree.insert(*tid, sig);
            i += 1;
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_build, bench_queries, bench_sharded_exec, bench_insert_delete
}
criterion_main!(benches);
