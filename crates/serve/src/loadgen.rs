//! Open- and closed-loop load generation against a running server.
//!
//! The two loops answer different questions. A **closed** loop keeps
//! `conns` outstanding requests at all times — each connection fires its
//! next query the moment the previous answer lands — and so measures the
//! service capacity of the pipeline. An **open** loop fires queries on a
//! fixed global schedule (`rate_qps`) regardless of completions, and
//! measures latency *including the queueing* a real arrival process would
//! see: each query's latency clock starts at its scheduled arrival time,
//! not at its actual send time, so schedule slip shows up in the tail
//! percentiles instead of being hidden (no coordinated omission).
//!
//! Queries are generated deterministically from `seed` and the global
//! query index, so two runs against the same dataset issue the identical
//! workload regardless of thread interleaving.

use crate::client::Client;
use crate::proto::{ContainmentMode, MetricName, Response};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sg_obs::json::{self, Json};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Which request mix to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Round-robin over all four query families.
    Mix,
    /// k-NN only.
    Knn,
    /// Containment (`containing`) only.
    Containment,
    /// Hamming range only.
    Range,
    /// Jaccard similarity-threshold only.
    Similarity,
}

impl Workload {
    /// Parses the CLI spelling.
    pub fn from_wire(s: &str) -> Option<Workload> {
        match s {
            "mix" => Some(Workload::Mix),
            "knn" => Some(Workload::Knn),
            "containment" => Some(Workload::Containment),
            "range" => Some(Workload::Range),
            "similarity" => Some(Workload::Similarity),
            _ => None,
        }
    }
}

/// Closed-loop (capacity) vs open-loop (fixed arrival rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// `conns` outstanding requests at all times.
    Closed,
    /// Queries arrive on a fixed global schedule.
    Open {
        /// Aggregate arrival rate, queries per second.
        rate_qps: f64,
    },
}

impl LoadMode {
    /// CLI spelling, for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open { .. } => "open",
        }
    }
}

/// Everything a load run needs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Loop discipline.
    pub mode: LoadMode,
    /// Concurrent connections.
    pub conns: usize,
    /// Total queries across all connections.
    pub queries: usize,
    /// Item-id universe (must match the served index's `nbits`).
    pub nbits: u32,
    /// Items per generated query set.
    pub query_items: usize,
    /// Request mix.
    pub workload: Workload,
    /// `k` for k-NN queries.
    pub k: u64,
    /// Radius for Hamming range queries.
    pub radius: f64,
    /// Threshold for similarity queries.
    pub min_sim: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Per-request `timeout_ms` sent on the wire, if any.
    pub timeout_ms: Option<u64>,
    /// Stamp a `trace_id` on every `trace_sample`-th request (`0`
    /// disables sampling). Sampled requests can be pulled back out of the
    /// server's `/debug/flight` dump by their ids.
    pub trace_sample: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7878".into(),
            mode: LoadMode::Closed,
            conns: 4,
            queries: 1000,
            nbits: 512,
            query_items: 8,
            workload: Workload::Mix,
            k: 10,
            radius: 8.0,
            min_sim: 0.5,
            seed: 20030305,
            timeout_ms: None,
            trace_sample: 0,
        }
    }
}

/// Aggregate results of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Queries sent.
    pub sent: u64,
    /// Queries answered with a result.
    pub ok: u64,
    /// Queries refused with `SERVER_BUSY`.
    pub busy: u64,
    /// Other error responses and transport failures.
    pub errors: u64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_s: f64,
    /// Completed queries per second.
    pub throughput_qps: f64,
    /// Latency percentiles over successful queries, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: u64,
    /// Responses that echoed a sampled `trace_id`.
    pub traced: u64,
    /// The first `SERVER_BUSY` error frame seen, re-encoded as it came
    /// off the wire — so a fully-refused run can show the server's own
    /// structured refusal (code, message, `retry_after_ms`).
    pub busy_frame: Option<String>,
}

impl LoadReport {
    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let traced = if self.traced > 0 {
            format!(" traced={}", self.traced)
        } else {
            String::new()
        };
        format!(
            "sent={} ok={} busy={} errors={}{traced} elapsed={:.3}s throughput={:.1} qps\n\
             latency_us: p50={} p95={} p99={} mean={}",
            self.sent,
            self.ok,
            self.busy,
            self.errors,
            self.elapsed_s,
            self.throughput_qps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.mean_us
        )
    }
}

/// The deterministic query for global index `i`.
pub fn request_for(cfg: &LoadConfig, i: usize) -> crate::proto::Request {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n = cfg.query_items.clamp(1, cfg.nbits as usize);
    let items: Vec<u32> = (0..n).map(|_| rng.gen_range(0..cfg.nbits)).collect();
    let id = i as u64 + 1;
    let trace_id = trace_id_for(cfg, i);
    let kind = match cfg.workload {
        Workload::Mix => i % 4,
        Workload::Knn => 0,
        Workload::Containment => 1,
        Workload::Range => 2,
        Workload::Similarity => 3,
    };
    match kind {
        0 => crate::proto::Request::Knn {
            id,
            items,
            k: cfg.k,
            metric: MetricName::Hamming,
            timeout_ms: cfg.timeout_ms,
            trace_id,
        },
        1 => crate::proto::Request::Containment {
            id,
            mode: ContainmentMode::Containing,
            items,
            timeout_ms: cfg.timeout_ms,
            trace_id,
        },
        2 => crate::proto::Request::Range {
            id,
            items,
            radius: cfg.radius,
            timeout_ms: cfg.timeout_ms,
            trace_id,
        },
        _ => crate::proto::Request::Similarity {
            id,
            items,
            min_sim: cfg.min_sim,
            metric: MetricName::Jaccard,
            timeout_ms: cfg.timeout_ms,
            trace_id,
        },
    }
}

/// The deterministic `trace_id` sampled requests carry: a recognizable
/// high-bit prefix plus the global query index, so a run's sampled traces
/// are easy to pick out of a flight dump.
pub fn trace_id_for(cfg: &LoadConfig, i: usize) -> Option<u64> {
    if cfg.trace_sample > 0 && i % cfg.trace_sample == 0 {
        Some(0xC1AE_0000_0000_0000 | i as u64)
    } else {
        None
    }
}

struct Tally {
    sent: u64,
    ok: u64,
    busy: u64,
    errors: u64,
    traced: u64,
    latencies_us: Vec<u64>,
    busy_frame: Option<String>,
}

/// Runs the configured load and reports throughput + latency percentiles.
///
/// Returns `Err` if no connection could be established.
pub fn run_load(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let conns = cfg.conns.max(1);
    let next = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(conns + 1));
    let tallies: Arc<Mutex<Vec<Tally>>> = Arc::new(Mutex::new(Vec::new()));

    // Connect up front so a dead server fails fast instead of producing a
    // report full of transport errors.
    let clients: Vec<Client> = (0..conns)
        .map(|_| Client::connect(&*cfg.addr))
        .collect::<std::io::Result<Vec<_>>>()?;

    let mut handles = Vec::with_capacity(conns);
    for mut client in clients {
        let cfg = cfg.clone();
        let next = Arc::clone(&next);
        let barrier = Arc::clone(&barrier);
        let tallies = Arc::clone(&tallies);
        handles.push(std::thread::spawn(move || {
            let mut tally = Tally {
                sent: 0,
                ok: 0,
                busy: 0,
                errors: 0,
                traced: 0,
                latencies_us: Vec::new(),
                busy_frame: None,
            };
            barrier.wait();
            let start = Instant::now();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.queries {
                    break;
                }
                // Open loop: query i is *due* at start + i/rate, and its
                // latency clock starts then, whether or not we were ready
                // to send it (no coordinated omission).
                let t0 = match cfg.mode {
                    LoadMode::Closed => Instant::now(),
                    LoadMode::Open { rate_qps } => {
                        let due = start + Duration::from_secs_f64(i as f64 / rate_qps.max(1e-9));
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        due
                    }
                };
                let req = request_for(&cfg, i);
                tally.sent += 1;
                match client.call(&req) {
                    Ok(
                        resp @ (Response::Neighbors { .. }
                        | Response::Tids { .. }
                        | Response::Ack { .. }),
                    ) => {
                        tally.ok += 1;
                        if resp.trace_id().is_some() && resp.trace_id() == req.trace_id() {
                            tally.traced += 1;
                        }
                        tally
                            .latencies_us
                            .push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                    }
                    Ok(
                        resp @ Response::Error {
                            code: crate::proto::ErrorCode::ServerBusy,
                            ..
                        },
                    ) => {
                        tally.busy += 1;
                        if tally.busy_frame.is_none() {
                            tally.busy_frame = Some(
                                String::from_utf8_lossy(&crate::proto::encode_response(&resp))
                                    .into_owned(),
                            );
                        }
                    }
                    Ok(Response::Error { .. }) => tally.errors += 1,
                    Err(_) => {
                        tally.errors += 1;
                        // The connection may be dead; stop this worker
                        // rather than spinning on errors.
                        break;
                    }
                }
            }
            tallies
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(tally);
        }));
    }

    barrier.wait();
    let start = Instant::now();
    for h in handles {
        let _ = h.join();
    }
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);

    let mut sent = 0;
    let mut ok = 0;
    let mut busy = 0;
    let mut errors = 0;
    let mut traced = 0;
    let mut busy_frame = None;
    let mut lat: Vec<u64> = Vec::new();
    for t in tallies.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        sent += t.sent;
        ok += t.ok;
        busy += t.busy;
        errors += t.errors;
        traced += t.traced;
        if busy_frame.is_none() {
            busy_frame = t.busy_frame.clone();
        }
        lat.extend_from_slice(&t.latencies_us);
    }
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let idx = ((lat.len() as f64 * p).ceil() as usize).clamp(1, lat.len()) - 1;
        lat[idx]
    };
    let mean_us = if lat.is_empty() {
        0
    } else {
        lat.iter().sum::<u64>() / lat.len() as u64
    };
    Ok(LoadReport {
        sent,
        ok,
        busy,
        errors,
        elapsed_s,
        throughput_qps: ok as f64 / elapsed_s,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mean_us,
        traced,
        busy_frame,
    })
}

/// Appends one perf-trajectory entry to a JSON array file (creating it if
/// absent), in the style of the workspace's `BENCH_*.json` files.
pub fn append_bench_json(path: &str, cfg: &LoadConfig, report: &LoadReport) -> std::io::Result<()> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => match json::parse(&text) {
            Ok(Json::Arr(entries)) => entries,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    entries.push(Json::Obj(vec![
        ("unix_ms".into(), Json::U64(unix_ms)),
        ("mode".into(), Json::Str(cfg.mode.as_str().into())),
        ("conns".into(), Json::U64(cfg.conns as u64)),
        ("queries".into(), Json::U64(cfg.queries as u64)),
        ("throughput_qps".into(), Json::F64(report.throughput_qps)),
        ("p50_us".into(), Json::U64(report.p50_us)),
        ("p95_us".into(), Json::U64(report.p95_us)),
        ("p99_us".into(), Json::U64(report.p99_us)),
        ("busy".into(), Json::U64(report.busy)),
    ]));
    std::fs::write(path, Json::Arr(entries).to_string_pretty())
}
