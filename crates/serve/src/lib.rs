//! # sg-serve — a zero-dependency network query service for the SG-tree
//!
//! PR 2's [`sg_exec::ShardedExecutor`] scales the paper's SG-tree across
//! shards and worker threads, but every query still enters through an
//! in-process Rust call. This crate turns the executor into a *system*: a
//! std-only TCP server speaking a simple length-prefixed JSON frame
//! protocol, built from four cooperating pieces:
//!
//! * [`proto`] — the wire protocol: `Containment` / `Range` /
//!   `Similarity` / `Knn` queries plus `Insert` / `Delete` / `Upsert`
//!   writes, canonical `(dist, tid)` responses, durable write acks
//!   (`applied` + WAL `lsn`), and structured error frames
//!   (`SERVER_BUSY`, `DEADLINE_EXCEEDED`, …).
//! * [`frame`] — 4-byte big-endian length prefix + JSON payload, with a
//!   hard frame-size cap so a hostile peer cannot balloon memory.
//! * [`batcher`] — the **dynamic micro-batcher**: admitted requests wait
//!   in a bounded queue until either `max_batch` of them accumulate or
//!   `max_wait` elapses; the batch's writes then ride one group-committed
//!   [`sg_exec::ShardedExecutor::write_batch`] (a single WAL fsync per
//!   shard touched) and its queries one
//!   [`sg_exec::ShardedExecutor::execute_batch_cancellable`] call. When
//!   the queue is full the submitter gets `SERVER_BUSY` with a
//!   `retry_after_ms` hint instead of queueing unboundedly, and a request
//!   whose deadline lapses flips its [`sg_exec::CancelFlag`] so abandoned
//!   work is skipped, merge included.
//! * [`server`] — a fixed accept/worker thread model: one accept thread,
//!   `conn_workers` connection handlers, an optional admin HTTP listener
//!   (`GET /metrics` Prometheus text from the [`sg_obs`] registry,
//!   `GET /healthz` readiness), and **graceful drain**: stop accepting,
//!   finish every in-flight request, join all threads.
//!
//! [`client`] is the matching blocking client and [`loadgen`] an open- and
//! closed-loop load generator reporting throughput and p50/p95/p99
//! latency (the `sg-bench-client` binary, which also appends the
//! `BENCH_serve.json` perf trajectory).
//!
//! ## Embedded quick example
//!
//! ```
//! use sg_exec::{ExecConfig, ShardedExecutor};
//! use sg_obs::Registry;
//! use sg_serve::{Client, MetricName, Response, ServeConfig, Server};
//! use sg_sig::Signature;
//! use std::sync::Arc;
//!
//! let nbits = 64;
//! let data: Vec<(u64, Signature)> = (0..100)
//!     .map(|tid| (tid, Signature::from_items(nbits, &[(tid % 16) as u32, 40])))
//!     .collect();
//! let exec = Arc::new(
//!     ShardedExecutor::build(nbits, &data, &ExecConfig::default()).unwrap(),
//! );
//! let server = Server::start(exec, Arc::new(Registry::new()), ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! match client.knn(&[3, 40], 5, MetricName::Hamming, None).unwrap() {
//!     Response::Neighbors { pairs, .. } => assert_eq!(pairs.len(), 5),
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! drop(client);
//! let report = server.join();
//! assert!(report.requests >= 1);
//! ```

pub mod batcher;
pub mod client;
pub mod frame;
pub mod loadgen;
pub mod proto;
pub mod server;

#[cfg(test)]
mod proptests;

pub use batcher::{BatchPolicy, BatchReply, Batcher, SubmitError, Ticket};
pub use client::{Client, ClientError};
pub use frame::{read_frame, write_frame, FrameError, FrameReader, Step, MAX_FRAME_DEFAULT};
pub use loadgen::{append_bench_json, run_load, LoadConfig, LoadMode, LoadReport, Workload};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, ContainmentMode, ErrorCode,
    MetricName, ProtoError, Request, Response,
};
pub use server::{DrainReport, ServeConfig, Server, ShutdownHandle};
