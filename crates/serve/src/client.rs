//! A minimal blocking client for the sg-serve frame protocol.

use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_DEFAULT};
use crate::proto::{
    decode_response, encode_request, ContainmentMode, MetricName, ProtoError, Request, Response,
};
use std::net::{TcpStream, ToSocketAddrs};

/// Why a call failed below the protocol level.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// The response frame was malformed (truncated, oversize, …).
    Frame(FrameError),
    /// The response payload did not parse.
    Proto(ProtoError),
    /// The server closed the connection instead of responding.
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "client frame error: {e}"),
            ClientError::Proto(e) => write!(f, "client protocol error: {e}"),
            ClientError::ConnectionClosed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One blocking connection; request ids are assigned automatically by the
/// convenience methods.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame: usize,
    trace: Option<u64>,
}

impl Client {
    /// Connects with `TCP_NODELAY` (the frames are tiny; latency wins).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 1,
            max_frame: MAX_FRAME_DEFAULT,
            trace: None,
        })
    }

    /// Sets (or clears) the `trace_id` the convenience methods stamp on
    /// subsequent requests. The server echoes it and, when its flight
    /// recorder is on, tags every span of the request with it.
    pub fn set_trace_id(&mut self, trace_id: Option<u64>) {
        self.trace = trace_id;
    }

    /// Sends one request frame and blocks for the matching response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        match read_frame(&mut self.stream, self.max_frame)? {
            Some(payload) => Ok(decode_response(&payload)?),
            None => Err(ClientError::ConnectionClosed),
        }
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Containment query over the given item set.
    pub fn containment(
        &mut self,
        mode: ContainmentMode,
        items: &[u32],
        timeout_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let req = Request::Containment {
            id: self.take_id(),
            mode,
            items: items.to_vec(),
            timeout_ms,
            trace_id: self.trace,
        };
        self.call(&req)
    }

    /// Hamming range query: everything within `radius`.
    pub fn range(
        &mut self,
        items: &[u32],
        radius: f64,
        timeout_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let req = Request::Range {
            id: self.take_id(),
            items: items.to_vec(),
            radius,
            timeout_ms,
            trace_id: self.trace,
        };
        self.call(&req)
    }

    /// Similarity threshold query: everything with similarity ≥ `min_sim`.
    pub fn similarity(
        &mut self,
        items: &[u32],
        min_sim: f64,
        metric: MetricName,
        timeout_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let req = Request::Similarity {
            id: self.take_id(),
            items: items.to_vec(),
            min_sim,
            metric,
            timeout_ms,
            trace_id: self.trace,
        };
        self.call(&req)
    }

    /// Inserts a transaction; the server acks only once the write is
    /// durable to its fsync policy.
    pub fn insert(
        &mut self,
        tid: u64,
        items: &[u32],
        timeout_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let req = Request::Insert {
            id: self.take_id(),
            tid,
            items: items.to_vec(),
            timeout_ms,
            trace_id: self.trace,
        };
        self.call(&req)
    }

    /// Deletes a transaction by id (`applied: false` when absent).
    pub fn delete(&mut self, tid: u64, timeout_ms: Option<u64>) -> Result<Response, ClientError> {
        let req = Request::Delete {
            id: self.take_id(),
            tid,
            timeout_ms,
            trace_id: self.trace,
        };
        self.call(&req)
    }

    /// Inserts or replaces a transaction.
    pub fn upsert(
        &mut self,
        tid: u64,
        items: &[u32],
        timeout_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let req = Request::Upsert {
            id: self.take_id(),
            tid,
            items: items.to_vec(),
            timeout_ms,
            trace_id: self.trace,
        };
        self.call(&req)
    }

    /// `k` nearest neighbors under `metric`.
    pub fn knn(
        &mut self,
        items: &[u32],
        k: u64,
        metric: MetricName,
        timeout_ms: Option<u64>,
    ) -> Result<Response, ClientError> {
        let req = Request::Knn {
            id: self.take_id(),
            items: items.to_vec(),
            k,
            metric,
            timeout_ms,
            trace_id: self.trace,
        };
        self.call(&req)
    }
}
