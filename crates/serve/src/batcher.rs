//! The dynamic micro-batcher: admission control + batching window.
//!
//! Connection workers [`Batcher::submit`] decoded queries — and
//! [`Batcher::submit_write`] decoded writes — into one **bounded** queue.
//! A dedicated batch thread collects up to [`BatchPolicy::max_batch`]
//! requests or waits at most [`BatchPolicy::max_wait`] after the first
//! one arrives — whichever comes first — then drives the batch's writes
//! through one group-committed [`ShardedExecutor::write_batch`] (a single
//! WAL fsync per shard touched, regardless of how many clients wrote)
//! and its queries through one
//! [`ShardedExecutor::execute_batch_cancellable`], so concurrent clients
//! share fan-out scheduling, WAL syncs, and per-batch bookkeeping instead
//! of paying them per request.
//!
//! Backpressure is explicit: when the queue is full, `submit` fails fast
//! with [`SubmitError::Busy`] carrying a `retry_after_ms` hint derived
//! from the current backlog and the last observed batch service time —
//! the server never queues unboundedly. A request whose deadline lapses
//! before dispatch is dropped (its waiter has already given up), and a
//! waiter that times out flips the ticket's [`CancelFlag`] so the
//! executor skips remaining shard work and the merge.

use sg_exec::{
    CancelFlag, QueryOptions, QueryRequest, QueryResponse, SgError, ShardedExecutor, WriteAck,
    WriteOp,
};
use sg_obs::{span, ServeObs, SpanCtx};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shape of the dynamic micro-batches.
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many requests are pending.
    pub max_batch: usize,
    /// … or when the oldest pending request has waited this long.
    pub max_wait: Duration,
    /// Admission-queue capacity; beyond it, submits fail with
    /// [`SubmitError::Busy`].
    pub queue_cap: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
            queue_cap: 256,
        }
    }
}

/// Outcome of one admitted request, delivered on the ticket's channel.
#[derive(Debug)]
pub enum BatchReply {
    /// The merged canonical answer (with stats, and an EXPLAIN trace when
    /// the slow-query log is armed).
    Done(Box<QueryResponse>),
    /// The write is durable (to the server's fsync policy) and applied.
    Acked(WriteAck),
    /// The deadline passed before the batch was dispatched.
    Expired,
    /// The executor failed (e.g. a panic caught during batch execution).
    Failed(String),
}

/// Handed back by [`Batcher::submit`]: where the answer will arrive, and
/// the cancel flag to flip if the caller stops waiting.
#[derive(Debug)]
pub struct Ticket {
    /// Receives exactly one [`BatchReply`] unless the query is cancelled.
    pub rx: mpsc::Receiver<BatchReply>,
    /// Flip to abandon the query (skips remaining shard work + merge).
    pub cancel: CancelFlag,
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full.
    Busy {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// The batcher is draining and admits nothing new.
    ShuttingDown,
}

/// One admitted unit of work: a query to fan out or a write to group-commit.
enum Work {
    Query(QueryRequest),
    Write(WriteOp),
}

struct Pending {
    work: Work,
    deadline: Instant,
    cancel: CancelFlag,
    reply: mpsc::Sender<BatchReply>,
    admitted: Instant,
    /// Causal parent (the connection worker's `serve.request` span) for
    /// the queue-wait / dispatch / executor spans of this request.
    span: Option<SpanCtx>,
    /// [`span::now_ns`] at admission, for the synthesized `serve.queue`
    /// span (zero when the recorder was off at admission).
    admitted_ns: u64,
}

struct Shared {
    queue: Mutex<VecDeque<Pending>>,
    changed: Condvar,
    draining: AtomicBool,
    /// Service time of the most recent batch, for the retry hint (ms).
    last_batch_ms: AtomicU64,
}

impl Shared {
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Pending>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The micro-batcher: a bounded admission queue plus one batch thread.
pub struct Batcher {
    shared: Arc<Shared>,
    policy: BatchPolicy,
    obs: Arc<ServeObs>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Starts the batch thread over `exec`.
    pub fn start(exec: Arc<ShardedExecutor>, policy: BatchPolicy, obs: Arc<ServeObs>) -> Batcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            changed: Condvar::new(),
            draining: AtomicBool::new(false),
            last_batch_ms: AtomicU64::new(1),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            let policy = policy.clone();
            let obs = Arc::clone(&obs);
            std::thread::Builder::new()
                .name("sg-serve-batch".into())
                .spawn(move || batch_loop(&shared, &exec, &policy, &obs))
                .expect("spawn batch thread")
        };
        Batcher {
            shared,
            policy,
            obs,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Admits one query, or refuses with backpressure.
    pub fn submit(&self, query: QueryRequest, deadline: Instant) -> Result<Ticket, SubmitError> {
        self.admit(Work::Query(query), deadline, None)
    }

    /// [`Batcher::submit`] carrying the request's span context, so the
    /// queue wait and executor work parent under it.
    pub fn submit_with(
        &self,
        query: QueryRequest,
        deadline: Instant,
        span: Option<SpanCtx>,
    ) -> Result<Ticket, SubmitError> {
        self.admit(Work::Query(query), deadline, span)
    }

    /// Admits one write; its [`BatchReply::Acked`] arrives only after the
    /// operation is group-committed to the WAL.
    pub fn submit_write(&self, op: WriteOp, deadline: Instant) -> Result<Ticket, SubmitError> {
        self.admit(Work::Write(op), deadline, None)
    }

    /// [`Batcher::submit_write`] carrying the request's span context.
    pub fn submit_write_with(
        &self,
        op: WriteOp,
        deadline: Instant,
        span: Option<SpanCtx>,
    ) -> Result<Ticket, SubmitError> {
        self.admit(Work::Write(op), deadline, span)
    }

    fn admit(
        &self,
        work: Work,
        deadline: Instant,
        span: Option<SpanCtx>,
    ) -> Result<Ticket, SubmitError> {
        if self.shared.draining.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let mut q = self.shared.lock_queue();
        if q.len() >= self.policy.queue_cap {
            let depth = q.len() as u64;
            drop(q);
            let batch_ms = self.shared.last_batch_ms.load(Ordering::Relaxed).max(1);
            let batches_ahead = depth / self.policy.max_batch as u64 + 1;
            let retry_after_ms = (batches_ahead * batch_ms).clamp(1, 5_000);
            self.obs.busy_rejected.inc();
            return Err(SubmitError::Busy { retry_after_ms });
        }
        let (tx, rx) = mpsc::channel();
        let cancel = CancelFlag::new();
        q.push_back(Pending {
            work,
            deadline,
            cancel: cancel.clone(),
            reply: tx,
            admitted: Instant::now(),
            span,
            admitted_ns: if span::enabled() { span::now_ns() } else { 0 },
        });
        self.obs.queue_depth.set(q.len() as i64);
        self.obs.requests.inc();
        drop(q);
        self.shared.changed.notify_all();
        Ok(Ticket { rx, cancel })
    }

    /// Instantaneous admission-queue depth.
    pub fn depth(&self) -> usize {
        self.shared.lock_queue().len()
    }

    /// Stops admitting, flushes every already-admitted request through the
    /// executor, and joins the batch thread. Idempotent.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.changed.notify_all();
        let handle = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

fn batch_loop(shared: &Shared, exec: &ShardedExecutor, policy: &BatchPolicy, obs: &Arc<ServeObs>) {
    loop {
        let batch: Vec<Pending> = {
            let mut q = shared.lock_queue();
            // Wait for the first pending request (or drain of an empty
            // queue). The periodic timeout re-checks the drain flag.
            loop {
                if !q.is_empty() {
                    break;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = shared
                    .changed
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            // Batching window: give the batch `max_wait` to fill, unless
            // it is already full or the server is draining.
            let window_open = Instant::now();
            while q.len() < policy.max_batch && !shared.draining.load(Ordering::SeqCst) {
                let elapsed = window_open.elapsed();
                if elapsed >= policy.max_wait {
                    break;
                }
                let (guard, _) = shared
                    .changed
                    .wait_timeout(q, policy.max_wait - elapsed)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            let take = q.len().min(policy.max_batch);
            let batch = q.drain(..take).collect();
            obs.queue_depth.set(q.len() as i64);
            batch
        };
        dispatch(shared, exec, obs, batch);
    }
}

/// Runs one collected batch through the executor and replies to every
/// still-interested waiter. Writes in the batch ride one group-committed
/// [`ShardedExecutor::write_batch`] call (one WAL sync per shard touched),
/// then queries ride one [`ShardedExecutor::execute_batch_cancellable`] —
/// so a query admitted after a write in the same batch reads its effect.
fn dispatch(shared: &Shared, exec: &ShardedExecutor, obs: &Arc<ServeObs>, batch: Vec<Pending>) {
    let now = Instant::now();
    let mut queries = Vec::new();
    let mut writes = Vec::new();
    for p in batch {
        if p.cancel.is_cancelled() || p.deadline <= now {
            // The waiter timed out (or is about to): make sure no shard
            // work runs for it, and tell it why if it is still listening.
            // A write dropped here was never acked, so dropping is sound.
            p.cancel.cancel();
            let _ = p.reply.send(BatchReply::Expired);
            continue;
        }
        match p.work {
            Work::Query(_) => queries.push(p),
            Work::Write(_) => writes.push(p),
        }
    }
    if queries.is_empty() && writes.is_empty() {
        return;
    }
    if span::enabled() {
        // Synthesize each survivor's queue wait, parented to its request.
        let dispatched_ns = span::now_ns();
        for p in queries.iter().chain(writes.iter()) {
            if let (Some(ctx), true) = (p.span, p.admitted_ns != 0) {
                span::emit(
                    ctx.trace_id,
                    ctx.span_id,
                    "serve.queue",
                    "serve",
                    p.admitted_ns,
                    dispatched_ns.saturating_sub(p.admitted_ns),
                    &[],
                );
            }
        }
    }
    obs.batches.inc();
    obs.batch_size.record((queries.len() + writes.len()) as u64);
    let t0 = Instant::now();
    if !writes.is_empty() {
        dispatch_writes(exec, obs, &writes);
    }
    if !queries.is_empty() {
        dispatch_queries(exec, obs, &queries);
    }
    shared
        .last_batch_ms
        .store((t0.elapsed().as_millis() as u64).max(1), Ordering::Relaxed);
}

fn dispatch_writes(exec: &ShardedExecutor, obs: &Arc<ServeObs>, writes: &[Pending]) {
    let ops: Vec<WriteOp> = writes
        .iter()
        .map(|p| match &p.work {
            Work::Write(op) => op.clone(),
            Work::Query(_) => unreachable!("queries are partitioned out"),
        })
        .collect();
    // Group-committed writes share WAL appends and fsyncs, so their pager
    // spans are attributed to the first traced writer in the group.
    let group_span = writes.iter().find_map(|p| p.span);
    let t0_ns = span::now_ns();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.write_batch_spanned(ops, group_span)
    }));
    if span::enabled() {
        let dur = span::now_ns().saturating_sub(t0_ns);
        for p in writes {
            if let Some(ctx) = p.span {
                span::emit(
                    ctx.trace_id,
                    ctx.span_id,
                    "serve.dispatch",
                    "serve",
                    t0_ns,
                    dur,
                    &[("batch_writes", writes.len() as u64)],
                );
            }
        }
    }
    match outcome {
        Ok(results) => {
            for (p, result) in writes.iter().zip(results) {
                match result {
                    Ok(ack) => {
                        obs.request_ns
                            .record(p.admitted.elapsed().as_nanos() as u64);
                        let _ = p.reply.send(BatchReply::Acked(ack));
                    }
                    Err(e) => {
                        obs.errors.inc();
                        let _ = p.reply.send(BatchReply::Failed(e.to_string()));
                    }
                }
            }
        }
        Err(_) => {
            obs.errors.add(writes.len() as u64);
            for p in writes {
                let _ = p
                    .reply
                    .send(BatchReply::Failed("internal write error".into()));
            }
        }
    }
}

fn dispatch_queries(exec: &ShardedExecutor, obs: &Arc<ServeObs>, queries: &[Pending]) {
    // Collect an EXPLAIN trace per query whenever the slow-query log is
    // armed, so a promoted request retains its full cost breakdown.
    let explain = span::slow_threshold_ns() != u64::MAX;
    let batch: Vec<(QueryRequest, QueryOptions)> = queries
        .iter()
        .map(|p| match &p.work {
            Work::Query(q) => (
                q.clone(),
                QueryOptions {
                    trace: explain,
                    cancel: Some(p.cancel.clone()),
                    deadline: None,
                    span: p.span,
                },
            ),
            Work::Write(_) => unreachable!("writes are partitioned out"),
        })
        .collect();
    let t0_ns = span::now_ns();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.execute_batch_with(batch)
    }));
    if span::enabled() {
        let dur = span::now_ns().saturating_sub(t0_ns);
        for p in queries {
            if let Some(ctx) = p.span {
                span::emit(
                    ctx.trace_id,
                    ctx.span_id,
                    "serve.dispatch",
                    "serve",
                    t0_ns,
                    dur,
                    &[("batch_queries", queries.len() as u64)],
                );
            }
        }
    }
    match outcome {
        Ok(results) => {
            for (p, result) in queries.iter().zip(results) {
                match result {
                    Ok(r) => {
                        obs.request_ns
                            .record(p.admitted.elapsed().as_nanos() as u64);
                        let _ = p.reply.send(BatchReply::Done(Box::new(r)));
                    }
                    // Cancelled mid-batch: the waiter already gave up.
                    Err(SgError::Cancelled) => {}
                    Err(e) => {
                        obs.errors.inc();
                        let _ = p.reply.send(BatchReply::Failed(e.to_string()));
                    }
                }
            }
        }
        Err(_) => {
            obs.errors.add(queries.len() as u64);
            for p in queries {
                let _ = p
                    .reply
                    .send(BatchReply::Failed("internal execution error".into()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_exec::{ExecConfig, QueryOutput, ShardedExecutor};
    use sg_obs::Registry;
    use sg_sig::Signature;

    const NBITS: u32 = 64;

    fn tiny_exec() -> Arc<ShardedExecutor> {
        let data: Vec<(u64, Signature)> = (0..64)
            .map(|tid| (tid, Signature::from_items(NBITS, &[(tid % 16) as u32, 40])))
            .collect();
        Arc::new(
            ShardedExecutor::build(
                NBITS,
                &data,
                &ExecConfig {
                    shards: 2,
                    ..ExecConfig::default()
                },
            )
            .unwrap(),
        )
    }

    fn obs() -> Arc<ServeObs> {
        ServeObs::register(&Registry::new(), "serve")
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(10)
    }

    #[test]
    fn batches_multiple_submitters_into_one_dispatch() {
        let obs = obs();
        let batcher = Batcher::start(
            tiny_exec(),
            BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                queue_cap: 64,
            },
            Arc::clone(&obs),
        );
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                batcher
                    .submit(
                        QueryRequest::Containing {
                            q: Signature::from_items(NBITS, &[(i % 16) as u32]),
                        },
                        far_deadline(),
                    )
                    .unwrap()
            })
            .collect();
        for t in tickets {
            match t.rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                BatchReply::Done(r) => assert!(matches!(r.output, QueryOutput::Tids(_))),
                other => panic!("unexpected reply: {other:?}"),
            }
        }
        // All eight arrived before the 50ms window closed: exactly one
        // batch of size 8 (the window dispatches as soon as it fills).
        assert_eq!(obs.batches.get(), 1);
        assert_eq!(obs.batch_size.snapshot().max, 8);
        batcher.drain();
    }

    #[test]
    fn full_queue_is_refused_with_retry_hint() {
        let obs = obs();
        // max_wait is long, so submitted requests sit in the queue.
        let batcher = Batcher::start(
            tiny_exec(),
            BatchPolicy {
                max_batch: 64,
                max_wait: Duration::from_secs(5),
                queue_cap: 4,
            },
            Arc::clone(&obs),
        );
        let q = || QueryRequest::Containing {
            q: Signature::from_items(NBITS, &[1]),
        };
        let mut tickets = Vec::new();
        for _ in 0..4 {
            tickets.push(batcher.submit(q(), far_deadline()).unwrap());
        }
        match batcher.submit(q(), far_deadline()) {
            Err(SubmitError::Busy { retry_after_ms }) => assert!(retry_after_ms >= 1),
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(obs.busy_rejected.get(), 1);
        // Drain flushes the four admitted requests.
        batcher.drain();
        for t in tickets {
            assert!(matches!(
                t.rx.recv_timeout(Duration::from_secs(5)).unwrap(),
                BatchReply::Done(_)
            ));
        }
    }

    #[test]
    fn expired_requests_are_skipped() {
        let obs = obs();
        let batcher = Batcher::start(
            tiny_exec(),
            BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(100),
                queue_cap: 16,
            },
            Arc::clone(&obs),
        );
        // Deadline far in the past: must come back Expired, not Done.
        let t = batcher
            .submit(
                QueryRequest::Containing {
                    q: Signature::from_items(NBITS, &[1]),
                },
                Instant::now() - Duration::from_millis(1),
            )
            .unwrap();
        assert!(matches!(
            t.rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            BatchReply::Expired
        ));
        batcher.drain();
    }

    #[test]
    fn writes_and_queries_share_a_batch() {
        let obs = obs();
        let batcher = Batcher::start(
            tiny_exec(),
            BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(100),
                queue_cap: 16,
            },
            Arc::clone(&obs),
        );
        // tid 1000 / item 50 is absent from the seed data; the write and a
        // containment query for it are admitted into the same window, and
        // writes dispatch before queries, so the query must see the insert.
        let w = batcher
            .submit_write(
                WriteOp::Insert {
                    tid: 1000,
                    sig: Signature::from_items(NBITS, &[50]),
                },
                far_deadline(),
            )
            .unwrap();
        let q = batcher
            .submit(
                QueryRequest::Containing {
                    q: Signature::from_items(NBITS, &[50]),
                },
                far_deadline(),
            )
            .unwrap();
        match w.rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            // A memory-only executor acks with no WAL sequence number.
            BatchReply::Acked(ack) => {
                assert!(ack.applied);
                assert_eq!(ack.lsn, None);
            }
            other => panic!("unexpected write reply: {other:?}"),
        }
        match q.rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            BatchReply::Done(r) => assert_eq!(r.output, QueryOutput::Tids(vec![1000])),
            other => panic!("unexpected query reply: {other:?}"),
        }
        // A duplicate insert surfaces as a structured failure, not a panic.
        let dup = batcher
            .submit_write(
                WriteOp::Insert {
                    tid: 1000,
                    sig: Signature::from_items(NBITS, &[50]),
                },
                far_deadline(),
            )
            .unwrap();
        assert!(matches!(
            dup.rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            BatchReply::Failed(_)
        ));
        batcher.drain();
    }

    #[test]
    fn submit_after_drain_is_refused() {
        let batcher = Batcher::start(tiny_exec(), BatchPolicy::default(), obs());
        batcher.drain();
        assert_eq!(
            batcher
                .submit(
                    QueryRequest::Containing {
                        q: Signature::from_items(NBITS, &[1]),
                    },
                    far_deadline(),
                )
                .err(),
            Some(SubmitError::ShuttingDown)
        );
    }
}
