//! The TCP query server: fixed accept/worker thread model over the
//! micro-batcher, plus an optional admin HTTP listener and graceful drain.
//!
//! One accept thread hands sockets to a fixed pool of `conn_workers`
//! connection handlers through a shared queue; each handler reads frames
//! incrementally (so it can observe the drain flag between reads), decodes
//! and validates requests, and waits on its batch ticket with the
//! remaining per-request deadline. A waiter that times out flips its
//! [`sg_exec::CancelFlag`], so the executor skips any shard work and the
//! merge for the abandoned query.
//!
//! Graceful drain ([`Server::join`], or a [`ShutdownHandle`] flipped from
//! a signal handler) proceeds strictly in dependency order: stop
//! accepting, let connection workers finish their in-flight requests,
//! flush the batcher's admitted queue, then stop the admin listener —
//! so every admitted query is answered and no thread is left behind.

use crate::batcher::{BatchPolicy, BatchReply, Batcher, SubmitError};
use crate::frame::{write_frame, FrameReader, Step, MAX_FRAME_DEFAULT};
use crate::proto::{
    decode_request, encode_response, ContainmentMode, ErrorCode, Request, Response,
};
use sg_exec::{QueryOutput, QueryRequest, ShardedExecutor, WriteOp};
use sg_obs::json::Json;
use sg_obs::{export, prof, span, CostModel, MetricHistory, Registry, Sampler, ServeObs, Span};
use sg_sig::{Metric, Signature};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables. The defaults bind ephemeral loopback ports and suit
/// tests and demos; real deployments set `addr` (and usually
/// `admin_addr`) explicitly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Query listener address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Admin HTTP listener (`/metrics`, `/healthz`); `None` disables it.
    pub admin_addr: Option<String>,
    /// Fixed number of connection-handler threads.
    pub conn_workers: usize,
    /// Micro-batching and admission-control policy.
    pub policy: BatchPolicy,
    /// Frame-size cap in bytes.
    pub max_frame: usize,
    /// Deadline applied when a request carries no `timeout_ms`.
    pub default_timeout: Duration,
    /// Socket poll granularity: how often blocked reads wake to check the
    /// drain flag.
    pub poll: Duration,
    /// Metric-history sampling interval; `None` disables the background
    /// sampler, and `/metrics/history` answers 404 with a hint.
    pub sample_interval: Option<Duration>,
    /// Samples retained by the metric-history ring (oldest overwritten).
    pub history_capacity: usize,
    /// Byte cap for `/debug/flight` responses; a dump over the cap gets a
    /// `413` pointing at `?limit=` instead of an unbounded body.
    pub flight_max_bytes: usize,
    /// Byte cap for `/debug/slow` responses (slow entries retain whole
    /// span trees, so a handful of deep requests can balloon the body).
    pub slow_max_bytes: usize,
    /// Byte cap for `/debug/profile` responses.
    pub profile_max_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            admin_addr: Some("127.0.0.1:0".into()),
            conn_workers: 8,
            policy: BatchPolicy::default(),
            max_frame: MAX_FRAME_DEFAULT,
            default_timeout: Duration::from_secs(1),
            poll: Duration::from_millis(10),
            sample_interval: None,
            history_capacity: 512,
            flight_max_bytes: 4 << 20,
            slow_max_bytes: 4 << 20,
            profile_max_bytes: 4 << 20,
        }
    }
}

/// Counters summarizing a completed run, returned by [`Server::join`].
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Requests admitted to the batcher.
    pub requests: u64,
    /// Requests refused with `SERVER_BUSY`.
    pub busy_rejected: u64,
    /// Requests that hit their deadline.
    pub timeouts: u64,
    /// Requests that failed internally.
    pub errors: u64,
}

/// Cloneable remote control: flips the drain flag from anywhere (e.g. a
/// signal handler thread). [`Server::join`] still performs the join.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests a graceful drain.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

/// Cached `/debug/tree` document. The health walk visits every node of
/// every shard, so no matter how hot the admin port is polled the walk
/// reruns at most once per [`HEALTH_TTL`].
struct HealthCache {
    at: Instant,
    json: String,
    status: String,
    detail: Option<String>,
}

const HEALTH_TTL: Duration = Duration::from_secs(2);

struct Inner {
    exec: Arc<ShardedExecutor>,
    batcher: Batcher,
    obs: Arc<ServeObs>,
    shutdown: Arc<AtomicBool>,
    /// Separate stop flag for the admin listener: it outlives `shutdown`
    /// so `/healthz` can report `503 draining` *during* the drain, and is
    /// set only once the drain has finished.
    admin_stop: AtomicBool,
    conns: ConnQueue,
    config: ServeConfig,
    /// Metric-history ring fed by the background sampler, when enabled.
    history: Option<Arc<MetricHistory>>,
    health: Mutex<Option<HealthCache>>,
}

/// A running query server; drop-in lifetime is managed via [`Server::join`].
pub struct Server {
    inner: Arc<Inner>,
    registry: Arc<Registry>,
    local_addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    admin: Option<JoinHandle<()>>,
    sampler: Option<Sampler>,
}

impl Server {
    /// Binds the listeners and starts every thread.
    pub fn start(
        exec: Arc<ShardedExecutor>,
        registry: Arc<Registry>,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let admin_listener = match &config.admin_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let admin_addr = match &admin_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let obs = ServeObs::register(&registry, "serve");
        // Resource totals (cost.cpu_ns, cost.lane_ops, …) ride the same
        // registry as every other counter, so /metrics/history rates them.
        exec.register_cost_obs(&registry, "cost");
        let batcher = Batcher::start(Arc::clone(&exec), config.policy.clone(), Arc::clone(&obs));
        let sampler = config
            .sample_interval
            .map(|iv| Sampler::start(Arc::clone(&registry), iv, config.history_capacity));
        let history = sampler.as_ref().map(|s| s.history());
        let inner = Arc::new(Inner {
            exec,
            batcher,
            obs,
            shutdown: Arc::new(AtomicBool::new(false)),
            admin_stop: AtomicBool::new(false),
            conns: ConnQueue {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            },
            config,
            history,
            health: Mutex::new(None),
        });

        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("sg-serve-accept".into())
                .spawn(move || accept_loop(&inner, listener))?
        };
        let workers = (0..inner.config.conn_workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sg-serve-conn-{i}"))
                    .spawn(move || conn_worker_loop(&inner))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let admin = match admin_listener {
            Some(l) => Some({
                let inner = Arc::clone(&inner);
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name("sg-serve-admin".into())
                    .spawn(move || admin_loop(&inner, &registry, l))?
            }),
            None => None,
        };

        Ok(Server {
            inner,
            registry,
            local_addr,
            admin_addr,
            accept: Some(accept),
            workers,
            admin: Some(admin).flatten(),
            sampler,
        })
    }

    /// The bound query-listener address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound admin HTTP address, when enabled.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// A cloneable handle that triggers a graceful drain.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.inner.shutdown))
    }

    /// The metrics registry this server reports into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Graceful drain: stop accepting, finish in-flight requests, flush
    /// the batcher, stop the admin listener, join every thread.
    pub fn join(mut self) -> DrainReport {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.obs.draining.set(1);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Wake connection workers parked on the empty queue.
        self.inner.conns.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Only after the last connection worker has returned can no new
        // submits race the batcher's drain.
        self.inner.batcher.drain();
        // The sampler stops after the batcher flush so the ring's last
        // samples cover the drain itself; `/metrics/history` keeps
        // serving the frozen ring until the admin listener goes away.
        if let Some(mut s) = self.sampler.take() {
            s.stop();
        }
        // The admin listener stays up through the drain (healthz reports
        // 503 `draining` the whole time) and stops only now.
        self.inner.admin_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.admin.take() {
            let _ = h.join();
        }
        let obs = &self.inner.obs;
        DrainReport {
            accepted: obs.accepted.get(),
            requests: obs.requests.get(),
            busy_rejected: obs.busy_rejected.get(),
            timeouts: obs.timeouts.get(),
            errors: obs.errors.get(),
        }
    }
}

fn lock_conns(q: &ConnQueue) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
    q.queue.lock().unwrap_or_else(|e| e.into_inner())
}

fn accept_loop(inner: &Inner, listener: TcpListener) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                inner.obs.accepted.inc();
                let t0 = span::now_ns();
                lock_conns(&inner.conns).push_back(stream);
                inner.conns.available.notify_one();
                if span::enabled() {
                    // Connection-scoped, so it roots a trace of its own.
                    span::emit(
                        span::next_trace_id(),
                        0,
                        "serve.accept",
                        "serve",
                        t0,
                        span::now_ns().saturating_sub(t0),
                        &[],
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(inner.config.poll);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // Transient accept failures (e.g. the peer aborted while
            // queued) must not kill the listener.
            Err(_) => std::thread::sleep(inner.config.poll),
        }
    }
}

fn conn_worker_loop(inner: &Inner) {
    loop {
        let stream = {
            let mut q = lock_conns(&inner.conns);
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = inner
                    .conns
                    .available
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        inner.obs.connections.add(1);
        serve_conn(inner, stream);
        inner.obs.connections.add(-1);
    }
}

/// Handles one connection until EOF, a fatal framing error, or drain.
fn serve_conn(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.config.poll));
    let mut reader = FrameReader::new();
    loop {
        match reader.step(&mut stream, inner.config.max_frame) {
            Ok(Step::Frame(payload)) => {
                let resp = handle_payload(inner, &payload);
                if write_frame(&mut stream, &encode_response(&resp)).is_err() {
                    return;
                }
            }
            Ok(Step::Pending) => {
                // Finish any request already in flight, but don't start
                // reading new ones once the server is draining.
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(Step::Eof) => return,
            Ok(Step::TooLarge(len)) => {
                // The stream cannot be resynchronized: send a structured
                // error frame, then close.
                let resp = Response::Error {
                    id: 0,
                    code: ErrorCode::FrameTooLarge,
                    message: format!(
                        "frame of {len} bytes exceeds the {}-byte cap",
                        inner.config.max_frame
                    ),
                    retry_after_ms: None,
                    trace_id: None,
                };
                let _ = write_frame(&mut stream, &encode_response(&resp));
                return;
            }
            Err(_) => return,
        }
    }
}

/// Decodes, validates, executes (through the batcher), and builds the
/// response for one request payload.
///
/// When the flight recorder or the slow-query log is armed, the whole
/// handler runs under a `serve.request` root span — client-supplied
/// `trace_id` or a fresh one — with the decode measured as a child and
/// the root's context handed down through the batcher so queue wait,
/// dispatch, executor, tree, and WAL spans all connect to it.
fn handle_payload(inner: &Inner, payload: &[u8]) -> Response {
    let t0 = span::now_ns();
    let req = match decode_request(payload) {
        Ok(req) => req,
        Err(e) => {
            inner.obs.errors.inc();
            return Response::Error {
                id: 0,
                code: ErrorCode::BadRequest,
                message: e.to_string(),
                retry_after_ms: None,
                trace_id: None,
            };
        }
    };
    let armed = span::enabled() || span::slow_threshold_ns() != u64::MAX;
    let client_trace = req.trace_id();
    let trace_id = if armed {
        client_trace.unwrap_or_else(span::next_trace_id)
    } else {
        0
    };
    // Root span backdated to before decode; a no-op unless recording.
    let root = Span::root_at(trace_id, "serve.request", "serve", t0);
    if let Some(ctx) = root.ctx() {
        let t_dec = span::now_ns();
        span::emit(
            trace_id,
            ctx.span_id,
            "serve.decode",
            "serve",
            t0,
            t_dec.saturating_sub(t0),
            &[("bytes", payload.len() as u64)],
        );
    }
    let mut explain = None;
    let resp = handle_request(inner, &req, root.ctx(), &mut explain);
    // Record the root span before the slow log snapshots the trace.
    drop(root);
    if armed {
        let dur_ns = span::now_ns().saturating_sub(t0);
        span::observe_slow(trace_id, req.type_str(), dur_ns, explain);
    }
    resp
}

/// The submit → wait → respond path of [`handle_payload`], with the root
/// span context to hand down and a slot for the EXPLAIN trace the
/// executor may return.
fn handle_request(
    inner: &Inner,
    req: &Request,
    span_ctx: Option<sg_obs::SpanCtx>,
    explain: &mut Option<sg_obs::json::Json>,
) -> Response {
    let id = req.id();
    let trace_id = req.trace_id();
    let timeout = req
        .timeout_ms()
        .map(Duration::from_millis)
        .unwrap_or(inner.config.default_timeout);
    let deadline = Instant::now() + timeout;
    let submitted = if req.is_write() {
        match to_write_op(inner, req) {
            Ok(op) => inner.batcher.submit_write_with(op, deadline, span_ctx),
            Err(message) => {
                inner.obs.errors.inc();
                return Response::Error {
                    id,
                    code: ErrorCode::BadRequest,
                    message,
                    retry_after_ms: None,
                    trace_id,
                };
            }
        }
    } else {
        match to_query(inner, req) {
            Ok(q) => inner.batcher.submit_with(q, deadline, span_ctx),
            Err(message) => {
                inner.obs.errors.inc();
                return Response::Error {
                    id,
                    code: ErrorCode::BadRequest,
                    message,
                    retry_after_ms: None,
                    trace_id,
                };
            }
        }
    };
    let ticket = match submitted {
        Ok(t) => t,
        Err(SubmitError::Busy { retry_after_ms }) => {
            return Response::Error {
                id,
                code: ErrorCode::ServerBusy,
                message: "admission queue full".into(),
                retry_after_ms: Some(retry_after_ms),
                trace_id,
            }
        }
        Err(SubmitError::ShuttingDown) => {
            return Response::Error {
                id,
                code: ErrorCode::ShuttingDown,
                message: "server is draining".into(),
                retry_after_ms: None,
                trace_id,
            }
        }
    };
    let remaining = deadline.saturating_duration_since(Instant::now());
    match ticket.rx.recv_timeout(remaining) {
        Ok(BatchReply::Done(r)) => {
            // Fold the per-level visit/prune counts into the process-wide
            // aggregates that `/debug/tree` correlates against the
            // estimated false-drop probabilities.
            if let Some(t) = r.trace.as_ref() {
                sg_obs::record_trace_levels(t);
            }
            *explain = r.trace.as_ref().map(|t| t.to_json_value());
            match r.output {
                QueryOutput::Neighbors(neighbors) => Response::Neighbors {
                    id,
                    pairs: neighbors.into_iter().map(|n| (n.dist, n.tid)).collect(),
                    trace_id,
                },
                QueryOutput::Tids(tids) => Response::Tids { id, tids, trace_id },
            }
        }
        Ok(BatchReply::Acked(ack)) => Response::Ack {
            id,
            applied: ack.applied,
            lsn: ack.lsn,
            trace_id,
        },
        Ok(BatchReply::Expired) => {
            inner.obs.timeouts.inc();
            Response::Error {
                id,
                code: ErrorCode::DeadlineExceeded,
                message: "deadline passed before dispatch".into(),
                retry_after_ms: None,
                trace_id,
            }
        }
        Ok(BatchReply::Failed(message)) => Response::Error {
            id,
            code: ErrorCode::Internal,
            message,
            retry_after_ms: None,
            trace_id,
        },
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            // Stop paying for an answer nobody will read: the flag makes
            // the executor skip this query's remaining shard work + merge.
            ticket.cancel.cancel();
            inner.obs.timeouts.inc();
            Response::Error {
                id,
                code: ErrorCode::DeadlineExceeded,
                message: "deadline exceeded".into(),
                retry_after_ms: None,
                trace_id,
            }
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            inner.obs.errors.inc();
            Response::Error {
                id,
                code: ErrorCode::Internal,
                message: "batcher dropped the request".into(),
                retry_after_ms: None,
                trace_id,
            }
        }
    }
}

/// Builds a query signature, validating every item id against the index
/// universe.
fn sig_of(nbits: u32, items: &[u32]) -> Result<Signature, String> {
    if let Some(&bad) = items.iter().find(|&&i| i >= nbits) {
        return Err(format!(
            "item id {bad} out of range: this index maps items to {nbits} signature bits"
        ));
    }
    Ok(Signature::from_items(nbits, items))
}

/// Maps a validated wire request to the executor's unified query form.
fn to_query(inner: &Inner, req: &Request) -> Result<QueryRequest, String> {
    let nbits = inner.exec.nbits();
    match req {
        Request::Containment { mode, items, .. } => {
            let q = sig_of(nbits, items)?;
            Ok(match mode {
                ContainmentMode::Containing => QueryRequest::Containing { q },
                ContainmentMode::ContainedIn => QueryRequest::ContainedIn { q },
                ContainmentMode::Exact => QueryRequest::Exact { q },
            })
        }
        Request::Range { items, radius, .. } => Ok(QueryRequest::Range {
            q: sig_of(nbits, items)?,
            eps: *radius,
            metric: Metric::hamming(),
        }),
        Request::Similarity {
            items,
            min_sim,
            metric,
            ..
        } => Ok(QueryRequest::Range {
            q: sig_of(nbits, items)?,
            eps: 1.0 - min_sim,
            metric: metric.to_metric(),
        }),
        Request::Knn {
            items, k, metric, ..
        } => {
            let k = usize::try_from(*k).map_err(|_| "`k` is out of range".to_string())?;
            Ok(QueryRequest::Knn {
                q: sig_of(nbits, items)?,
                k,
                metric: metric.to_metric(),
            })
        }
        Request::Insert { .. } | Request::Delete { .. } | Request::Upsert { .. } => {
            Err("write request routed to the query path".into())
        }
    }
}

/// Maps a validated wire request to the executor's write-op form.
fn to_write_op(inner: &Inner, req: &Request) -> Result<WriteOp, String> {
    let nbits = inner.exec.nbits();
    match req {
        Request::Insert { tid, items, .. } => Ok(WriteOp::Insert {
            tid: *tid,
            sig: sig_of(nbits, items)?,
        }),
        Request::Delete { tid, .. } => Ok(WriteOp::Delete { tid: *tid }),
        Request::Upsert { tid, items, .. } => Ok(WriteOp::Upsert {
            tid: *tid,
            sig: sig_of(nbits, items)?,
        }),
        _ => Err("query request routed to the write path".into()),
    }
}

// --------------------------------------------------------- admin listener

fn admin_loop(inner: &Inner, registry: &Registry, listener: TcpListener) {
    loop {
        if inner.admin_stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => serve_admin_conn(inner, registry, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(inner.config.poll);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(inner.config.poll),
        }
    }
}

/// Minimal HTTP/1.1: answers exactly one request, then closes.
fn serve_admin_conn(inner: &Inner, registry: &Registry, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request head; the admin endpoints take no
    // body.
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4",
            export::to_prometheus(&registry.snapshot()),
        ),
        ("GET", "/metrics/history") => match &inner.history {
            Some(h) => {
                let window = query_param(query, "window").and_then(parse_window);
                (
                    "200 OK",
                    "application/json",
                    h.history_json(window).to_string_compact(),
                )
            }
            None => (
                "404 Not Found",
                "text/plain",
                "metric history disabled; start with sampling on (sg-serve --sample-ms <N>)\n"
                    .into(),
            ),
        },
        ("GET", "/healthz") => {
            if inner.shutdown.load(Ordering::SeqCst) {
                ("503 Service Unavailable", "text/plain", "draining\n".into())
            } else {
                // Degraded stays 200 — the server is still answering
                // queries — but the top finding rides along for humans
                // and probes that look at the body.
                let (_, health_status, detail) = health_doc(inner);
                let body = match detail {
                    Some(d) if health_status != "ok" && health_status != "info" => {
                        format!("degraded ({health_status}): {d}\n")
                    }
                    _ => "ok\n".into(),
                };
                ("200 OK", "text/plain", body)
            }
        }
        ("GET", "/debug/tree") => ("200 OK", "application/json", health_doc(inner).0),
        ("GET", "/debug/flight") => {
            let limit = query_param(query, "limit").and_then(|v| v.parse::<usize>().ok());
            match span::flight_trace_json_bounded(inner.config.flight_max_bytes, limit) {
                Ok(body) => ("200 OK", "application/json", body),
                Err(o) => (
                    "413 Payload Too Large",
                    "text/plain",
                    format!(
                        "flight dump of {} events exceeds the {}-byte cap; \
                         retry with /debug/flight?limit={}\n",
                        o.events_total,
                        o.max_bytes,
                        o.events_fit.max(1)
                    ),
                ),
            }
        }
        ("GET", "/debug/slow") => {
            let limit = query_param(query, "limit").and_then(|v| v.parse::<usize>().ok());
            match span::slow_entries_json_bounded(inner.config.slow_max_bytes, limit) {
                Ok(body) => ("200 OK", "application/json", body),
                Err(o) => (
                    "413 Payload Too Large",
                    "text/plain",
                    format!(
                        "slow-query log of {} entries exceeds the {}-byte cap; \
                         retry with /debug/slow?limit={}\n",
                        o.entries_total,
                        o.max_bytes,
                        o.entries_fit.max(1)
                    ),
                ),
            }
        }
        ("GET", "/debug/profile") => {
            let limit = query_param(query, "limit").and_then(|v| v.parse::<usize>().ok());
            if query_param(query, "format") == Some("json") {
                let body = prof::flame_json(limit).to_string_compact();
                if body.len() > inner.config.profile_max_bytes {
                    let fit = prof::snapshot().len() / 2;
                    (
                        "413 Payload Too Large",
                        "text/plain",
                        format!(
                            "profile JSON exceeds the {}-byte cap; \
                             retry with /debug/profile?format=json&limit={}\n",
                            inner.config.profile_max_bytes,
                            fit.max(1)
                        ),
                    )
                } else {
                    ("200 OK", "application/json", body)
                }
            } else {
                match prof::folded_bounded(inner.config.profile_max_bytes, limit) {
                    Ok(body) => ("200 OK", "text/plain", body),
                    Err(o) => (
                        "413 Payload Too Large",
                        "text/plain",
                        format!(
                            "profile of {} stacks exceeds the {}-byte cap; \
                             retry with /debug/profile?limit={}\n",
                            o.stacks_total,
                            o.max_bytes,
                            o.stacks_fit.max(1)
                        ),
                    ),
                }
            }
        }
        ("GET", "/debug/costs") => (
            "200 OK",
            "application/json",
            CostModel::global().to_json().to_string_compact(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".into()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Value of `name` in an `a=1&b=2` query string.
fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == name).then_some(v)
    })
}

/// `90s`, `1500ms`, or a bare number of seconds.
fn parse_window(s: &str) -> Option<Duration> {
    if let Some(ms) = s.strip_suffix("ms") {
        return ms.parse::<u64>().ok().map(Duration::from_millis);
    }
    let s = s.strip_suffix('s').unwrap_or(s);
    s.parse::<u64>().ok().map(Duration::from_secs)
}

/// The `/debug/tree` document plus the status/top-finding pair `/healthz`
/// reports, recomputed at most once per [`HEALTH_TTL`].
fn health_doc(inner: &Inner) -> (String, String, Option<String>) {
    let mut cache = inner.health.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(c) = cache.as_ref() {
        if c.at.elapsed() < HEALTH_TTL {
            return (c.json.clone(), c.status.clone(), c.detail.clone());
        }
    }
    let doc = inner.exec.health_json();
    let status = doc
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or("ok")
        .to_string();
    // Findings are sorted most-severe-first, so the first message is the
    // one worth surfacing.
    let detail = doc
        .get("summary")
        .and_then(|s| s.get("findings"))
        .and_then(Json::as_arr)
        .and_then(|a| a.first())
        .and_then(|f| f.get("message"))
        .and_then(Json::as_str)
        .map(str::to_string);
    let json = doc.to_string_compact();
    *cache = Some(HealthCache {
        at: Instant::now(),
        json: json.clone(),
        status: status.clone(),
        detail: detail.clone(),
    });
    (json, status, detail)
}
