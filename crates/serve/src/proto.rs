//! The wire protocol: JSON request and response payloads.
//!
//! Every frame payload is one JSON object. Requests carry a caller-chosen
//! `id` that the matching response echoes, a `type` discriminator, an
//! optional `trace_id` (echoed back, and — when the server's flight
//! recorder is on — stamped onto every span the request produces, so the
//! client can later pull its span tree from `/debug/flight`), and the
//! query parameters; responses are either an answer (`"ok": true` with
//! `neighbors` — canonical `(dist, tid)` pairs — `tids`, or a write
//! `applied`/`lsn` ack) or a
//! structured error (`"ok": false` with `error.code`, `error.message`,
//! and, for `SERVER_BUSY`, an `error.retry_after_ms` hint).
//!
//! ```text
//! -> {"id":1,"type":"knn","items":[3,40],"k":5,"metric":"hamming"}
//! <- {"id":1,"ok":true,"neighbors":[[0.0,3],[2.0,19], ...]}
//! -> {"id":2,"type":"containment","mode":"containing","items":[40]}
//! <- {"id":2,"ok":true,"tids":[0,1,2, ...]}
//! -> {"id":4,"type":"insert","tid":900,"items":[3,40]}
//! <- {"id":4,"ok":true,"applied":true,"lsn":17}
//! <- {"id":3,"ok":false,"error":{"code":"SERVER_BUSY",
//!        "message":"admission queue full","retry_after_ms":12}}
//! ```
//!
//! Encoding and decoding ride the workspace's hand-rolled JSON
//! ([`sg_obs::json`]); distances are written with Rust's shortest
//! round-trip float formatting, so a served distance re-parses to the
//! *bit-identical* `f64` the executor produced.

use sg_obs::json::{self, Json};
use sg_sig::{Metric, MetricKind};

/// Containment query flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainmentMode {
    /// Transactions whose signature is a superset of the query.
    Containing,
    /// Transactions whose signature is a subset of the query.
    ContainedIn,
    /// Transactions whose signature equals the query exactly.
    Exact,
}

impl ContainmentMode {
    /// Wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ContainmentMode::Containing => "containing",
            ContainmentMode::ContainedIn => "contained_in",
            ContainmentMode::Exact => "exact",
        }
    }

    /// Parses the wire spelling.
    pub fn from_wire(s: &str) -> Option<ContainmentMode> {
        match s {
            "containing" => Some(ContainmentMode::Containing),
            "contained_in" => Some(ContainmentMode::ContainedIn),
            "exact" => Some(ContainmentMode::Exact),
            _ => None,
        }
    }
}

/// Distance metric selector on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricName {
    /// Symmetric-difference size (the paper's metric).
    Hamming,
    /// Jaccard distance.
    Jaccard,
    /// Dice distance.
    Dice,
    /// Overlap distance.
    Overlap,
}

impl MetricName {
    /// Wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricName::Hamming => "hamming",
            MetricName::Jaccard => "jaccard",
            MetricName::Dice => "dice",
            MetricName::Overlap => "overlap",
        }
    }

    /// Parses the wire spelling.
    pub fn from_wire(s: &str) -> Option<MetricName> {
        match s {
            "hamming" => Some(MetricName::Hamming),
            "jaccard" => Some(MetricName::Jaccard),
            "dice" => Some(MetricName::Dice),
            "overlap" => Some(MetricName::Overlap),
            _ => None,
        }
    }

    /// The [`sg_sig::Metric`] this name selects.
    pub fn to_metric(self) -> Metric {
        match self {
            MetricName::Hamming => Metric::hamming(),
            MetricName::Jaccard => Metric::jaccard(),
            MetricName::Dice => Metric::new(MetricKind::Dice),
            MetricName::Overlap => Metric::new(MetricKind::Overlap),
        }
    }
}

/// One query request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Set-containment query (`containing` / `contained_in` / `exact`).
    Containment {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Which containment relation to evaluate.
        mode: ContainmentMode,
        /// Item ids of the query set.
        items: Vec<u32>,
        /// Per-request deadline override, milliseconds.
        timeout_ms: Option<u64>,
        /// Client-supplied trace id, echoed in the response and stamped
        /// onto the request's spans.
        trace_id: Option<u64>,
    },
    /// Similarity range query under **Hamming** distance: everything
    /// within `radius` symmetric-difference items of the query.
    Range {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Item ids of the query set.
        items: Vec<u32>,
        /// Inclusive Hamming radius.
        radius: f64,
        /// Per-request deadline override, milliseconds.
        timeout_ms: Option<u64>,
        /// Client-supplied trace id, echoed in the response and stamped
        /// onto the request's spans.
        trace_id: Option<u64>,
    },
    /// Similarity threshold query under a fractional metric: everything
    /// with `similarity ≥ min_sim`, i.e. distance ≤ `1 − min_sim`.
    Similarity {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Item ids of the query set.
        items: Vec<u32>,
        /// Minimum similarity in `[0, 1]`.
        min_sim: f64,
        /// Fractional metric (jaccard / dice / overlap).
        metric: MetricName,
        /// Per-request deadline override, milliseconds.
        timeout_ms: Option<u64>,
        /// Client-supplied trace id, echoed in the response and stamped
        /// onto the request's spans.
        trace_id: Option<u64>,
    },
    /// `k` nearest neighbors under `metric`.
    Knn {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Item ids of the query set.
        items: Vec<u32>,
        /// Result size.
        k: u64,
        /// Distance metric.
        metric: MetricName,
        /// Per-request deadline override, milliseconds.
        timeout_ms: Option<u64>,
        /// Client-supplied trace id, echoed in the response and stamped
        /// onto the request's spans.
        trace_id: Option<u64>,
    },
    /// Insert a new transaction; the ack arrives only after the write is
    /// as durable as the server's fsync policy promises.
    Insert {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Transaction id to insert.
        tid: u64,
        /// Item ids of the new transaction's set.
        items: Vec<u32>,
        /// Per-request deadline override, milliseconds.
        timeout_ms: Option<u64>,
        /// Client-supplied trace id, echoed in the response and stamped
        /// onto the request's spans.
        trace_id: Option<u64>,
    },
    /// Delete a transaction by id; `applied: false` when absent.
    Delete {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Transaction id to delete.
        tid: u64,
        /// Per-request deadline override, milliseconds.
        timeout_ms: Option<u64>,
        /// Client-supplied trace id, echoed in the response and stamped
        /// onto the request's spans.
        trace_id: Option<u64>,
    },
    /// Insert-or-replace a transaction.
    Upsert {
        /// Caller-chosen id echoed in the response.
        id: u64,
        /// Transaction id to upsert.
        tid: u64,
        /// Item ids of the transaction's new set.
        items: Vec<u32>,
        /// Per-request deadline override, milliseconds.
        timeout_ms: Option<u64>,
        /// Client-supplied trace id, echoed in the response and stamped
        /// onto the request's spans.
        trace_id: Option<u64>,
    },
}

impl Request {
    /// The caller-chosen request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Containment { id, .. }
            | Request::Range { id, .. }
            | Request::Similarity { id, .. }
            | Request::Knn { id, .. }
            | Request::Insert { id, .. }
            | Request::Delete { id, .. }
            | Request::Upsert { id, .. } => *id,
        }
    }

    /// The per-request deadline override, if any.
    pub fn timeout_ms(&self) -> Option<u64> {
        match self {
            Request::Containment { timeout_ms, .. }
            | Request::Range { timeout_ms, .. }
            | Request::Similarity { timeout_ms, .. }
            | Request::Knn { timeout_ms, .. }
            | Request::Insert { timeout_ms, .. }
            | Request::Delete { timeout_ms, .. }
            | Request::Upsert { timeout_ms, .. } => *timeout_ms,
        }
    }

    /// The client-supplied trace id, if any.
    pub fn trace_id(&self) -> Option<u64> {
        match self {
            Request::Containment { trace_id, .. }
            | Request::Range { trace_id, .. }
            | Request::Similarity { trace_id, .. }
            | Request::Knn { trace_id, .. }
            | Request::Insert { trace_id, .. }
            | Request::Delete { trace_id, .. }
            | Request::Upsert { trace_id, .. } => *trace_id,
        }
    }

    /// The wire `type` discriminator, for span names and the slow-query
    /// log.
    pub fn type_str(&self) -> &'static str {
        match self {
            Request::Containment { .. } => "containment",
            Request::Range { .. } => "range",
            Request::Similarity { .. } => "similarity",
            Request::Knn { .. } => "knn",
            Request::Insert { .. } => "insert",
            Request::Delete { .. } => "delete",
            Request::Upsert { .. } => "upsert",
        }
    }

    /// Whether this request mutates the index.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Insert { .. } | Request::Delete { .. } | Request::Upsert { .. }
        )
    }
}

/// Structured error category on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was syntactically or semantically invalid.
    BadRequest,
    /// The frame exceeded the size cap; the connection will close.
    FrameTooLarge,
    /// The admission queue is full; retry after `retry_after_ms`.
    ServerBusy,
    /// The per-request deadline passed before an answer was ready.
    DeadlineExceeded,
    /// The server is draining and no longer admits requests.
    ShuttingDown,
    /// The server failed internally while executing the query.
    Internal,
}

impl ErrorCode {
    /// Wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "BAD_REQUEST",
            ErrorCode::FrameTooLarge => "FRAME_TOO_LARGE",
            ErrorCode::ServerBusy => "SERVER_BUSY",
            ErrorCode::DeadlineExceeded => "DEADLINE_EXCEEDED",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    /// Parses the wire spelling.
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        match s {
            "BAD_REQUEST" => Some(ErrorCode::BadRequest),
            "FRAME_TOO_LARGE" => Some(ErrorCode::FrameTooLarge),
            "SERVER_BUSY" => Some(ErrorCode::ServerBusy),
            "DEADLINE_EXCEEDED" => Some(ErrorCode::DeadlineExceeded),
            "SHUTTING_DOWN" => Some(ErrorCode::ShuttingDown),
            "INTERNAL" => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Distance-ranked answer: canonical `(dist, tid)` pairs.
    Neighbors {
        /// Echo of the request id.
        id: u64,
        /// `(dist, tid)` in canonical order.
        pairs: Vec<(f64, u64)>,
        /// Echo of the request's `trace_id`, when it carried one.
        trace_id: Option<u64>,
    },
    /// Id-set answer (containment queries), ascending tids.
    Tids {
        /// Echo of the request id.
        id: u64,
        /// Matching transaction ids.
        tids: Vec<u64>,
        /// Echo of the request's `trace_id`, when it carried one.
        trace_id: Option<u64>,
    },
    /// Durable write acknowledgement: the operation reached the WAL (and
    /// was fsynced per the server's policy) before this frame was sent.
    Ack {
        /// Echo of the request id.
        id: u64,
        /// Whether the write changed the index (`false` e.g. for a delete
        /// of an absent tid).
        applied: bool,
        /// WAL sequence number, when the server runs durably.
        lsn: Option<u64>,
        /// Echo of the request's `trace_id`, when it carried one.
        trace_id: Option<u64>,
    },
    /// Structured error.
    Error {
        /// Echo of the request id (`0` when no request could be parsed).
        id: u64,
        /// Error category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Backpressure hint: retry no sooner than this many milliseconds.
        retry_after_ms: Option<u64>,
        /// Echo of the request's `trace_id`, when it carried one.
        trace_id: Option<u64>,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Neighbors { id, .. }
            | Response::Tids { id, .. }
            | Response::Ack { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }

    /// The echoed trace id, if the request carried one.
    pub fn trace_id(&self) -> Option<u64> {
        match self {
            Response::Neighbors { trace_id, .. }
            | Response::Tids { trace_id, .. }
            | Response::Ack { trace_id, .. }
            | Response::Error { trace_id, .. } => *trace_id,
        }
    }
}

/// A malformed payload: what was wrong, for the error frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

// ------------------------------------------------------------- encoding

fn items_json(items: &[u32]) -> Json {
    Json::Arr(items.iter().map(|&i| Json::U64(i as u64)).collect())
}

fn push_timeout(members: &mut Vec<(String, Json)>, timeout_ms: Option<u64>) {
    if let Some(t) = timeout_ms {
        members.push(("timeout_ms".into(), Json::U64(t)));
    }
}

fn push_trace(members: &mut Vec<(String, Json)>, trace_id: Option<u64>) {
    if let Some(t) = trace_id {
        members.push(("trace_id".into(), Json::U64(t)));
    }
}

/// Serializes a request to its JSON payload bytes.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut m: Vec<(String, Json)> = vec![("id".into(), Json::U64(req.id()))];
    push_trace(&mut m, req.trace_id());
    match req {
        Request::Containment {
            mode,
            items,
            timeout_ms,
            ..
        } => {
            m.push(("type".into(), Json::Str("containment".into())));
            m.push(("mode".into(), Json::Str(mode.as_str().into())));
            m.push(("items".into(), items_json(items)));
            push_timeout(&mut m, *timeout_ms);
        }
        Request::Range {
            items,
            radius,
            timeout_ms,
            ..
        } => {
            m.push(("type".into(), Json::Str("range".into())));
            m.push(("items".into(), items_json(items)));
            m.push(("radius".into(), Json::F64(*radius)));
            push_timeout(&mut m, *timeout_ms);
        }
        Request::Similarity {
            items,
            min_sim,
            metric,
            timeout_ms,
            ..
        } => {
            m.push(("type".into(), Json::Str("similarity".into())));
            m.push(("items".into(), items_json(items)));
            m.push(("min_sim".into(), Json::F64(*min_sim)));
            m.push(("metric".into(), Json::Str(metric.as_str().into())));
            push_timeout(&mut m, *timeout_ms);
        }
        Request::Knn {
            items,
            k,
            metric,
            timeout_ms,
            ..
        } => {
            m.push(("type".into(), Json::Str("knn".into())));
            m.push(("items".into(), items_json(items)));
            m.push(("k".into(), Json::U64(*k)));
            m.push(("metric".into(), Json::Str(metric.as_str().into())));
            push_timeout(&mut m, *timeout_ms);
        }
        Request::Insert {
            tid,
            items,
            timeout_ms,
            ..
        } => {
            m.push(("type".into(), Json::Str("insert".into())));
            m.push(("tid".into(), Json::U64(*tid)));
            m.push(("items".into(), items_json(items)));
            push_timeout(&mut m, *timeout_ms);
        }
        Request::Delete {
            tid, timeout_ms, ..
        } => {
            m.push(("type".into(), Json::Str("delete".into())));
            m.push(("tid".into(), Json::U64(*tid)));
            push_timeout(&mut m, *timeout_ms);
        }
        Request::Upsert {
            tid,
            items,
            timeout_ms,
            ..
        } => {
            m.push(("type".into(), Json::Str("upsert".into())));
            m.push(("tid".into(), Json::U64(*tid)));
            m.push(("items".into(), items_json(items)));
            push_timeout(&mut m, *timeout_ms);
        }
    }
    Json::Obj(m).to_string_compact().into_bytes()
}

/// Serializes a response to its JSON payload bytes.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut m: Vec<(String, Json)> = match resp {
        Response::Neighbors { id, pairs, .. } => vec![
            ("id".into(), Json::U64(*id)),
            ("ok".into(), Json::Bool(true)),
            (
                "neighbors".into(),
                Json::Arr(
                    pairs
                        .iter()
                        .map(|&(d, t)| Json::Arr(vec![Json::F64(d), Json::U64(t)]))
                        .collect(),
                ),
            ),
        ],
        Response::Tids { id, tids, .. } => vec![
            ("id".into(), Json::U64(*id)),
            ("ok".into(), Json::Bool(true)),
            (
                "tids".into(),
                Json::Arr(tids.iter().map(|&t| Json::U64(t)).collect()),
            ),
        ],
        Response::Ack {
            id, applied, lsn, ..
        } => {
            let mut m = vec![
                ("id".into(), Json::U64(*id)),
                ("ok".into(), Json::Bool(true)),
                ("applied".into(), Json::Bool(*applied)),
            ];
            if let Some(l) = lsn {
                m.push(("lsn".into(), Json::U64(*l)));
            }
            m
        }
        Response::Error {
            id,
            code,
            message,
            retry_after_ms,
            ..
        } => {
            let mut err: Vec<(String, Json)> = vec![
                ("code".into(), Json::Str(code.as_str().into())),
                ("message".into(), Json::Str(message.clone())),
            ];
            if let Some(r) = retry_after_ms {
                err.push(("retry_after_ms".into(), Json::U64(*r)));
            }
            vec![
                ("id".into(), Json::U64(*id)),
                ("ok".into(), Json::Bool(false)),
                ("error".into(), Json::Obj(err)),
            ]
        }
    };
    push_trace(&mut m, resp.trace_id());
    Json::Obj(m).to_string_compact().into_bytes()
}

// ------------------------------------------------------------- decoding

fn err(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, ProtoError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(format!("missing or non-integer `{key}`")))
}

fn get_f64(obj: &Json, key: &str) -> Result<f64, ProtoError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| err(format!("missing or non-numeric `{key}`")))
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, ProtoError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| err(format!("missing or non-string `{key}`")))
}

fn get_items(obj: &Json) -> Result<Vec<u32>, ProtoError> {
    let arr = obj
        .get("items")
        .and_then(Json::as_arr)
        .ok_or_else(|| err("missing or non-array `items`"))?;
    arr.iter()
        .map(|v| {
            v.as_u64()
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| err("`items` entries must be u32 item ids"))
        })
        .collect()
}

fn get_timeout(obj: &Json) -> Result<Option<u64>, ProtoError> {
    match obj.get("timeout_ms") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| err("`timeout_ms` must be a non-negative integer")),
    }
}

fn get_trace(obj: &Json) -> Result<Option<u64>, ProtoError> {
    match obj.get("trace_id") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| err("`trace_id` must be a non-negative integer")),
    }
}

fn get_metric(obj: &Json, default: MetricName) -> Result<MetricName, ProtoError> {
    match obj.get("metric") {
        None | Some(Json::Null) => Ok(default),
        Some(v) => {
            let s = v.as_str().ok_or_else(|| err("`metric` must be a string"))?;
            MetricName::from_wire(s).ok_or_else(|| err(format!("unknown metric `{s}`")))
        }
    }
}

/// Parses a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let text = std::str::from_utf8(payload).map_err(|_| err("payload is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(err("payload must be a JSON object"));
    }
    let id = get_u64(&doc, "id")?;
    let timeout_ms = get_timeout(&doc)?;
    let trace_id = get_trace(&doc)?;
    match get_str(&doc, "type")? {
        "containment" => {
            let mode_s = get_str(&doc, "mode")?;
            let mode = ContainmentMode::from_wire(mode_s)
                .ok_or_else(|| err(format!("unknown containment mode `{mode_s}`")))?;
            Ok(Request::Containment {
                id,
                mode,
                items: get_items(&doc)?,
                timeout_ms,
                trace_id,
            })
        }
        "range" => {
            let radius = get_f64(&doc, "radius")?;
            if !radius.is_finite() || radius < 0.0 {
                return Err(err("`radius` must be finite and non-negative"));
            }
            Ok(Request::Range {
                id,
                items: get_items(&doc)?,
                radius,
                timeout_ms,
                trace_id,
            })
        }
        "similarity" => {
            let min_sim = get_f64(&doc, "min_sim")?;
            if !(0.0..=1.0).contains(&min_sim) {
                return Err(err("`min_sim` must be within [0, 1]"));
            }
            Ok(Request::Similarity {
                id,
                items: get_items(&doc)?,
                min_sim,
                metric: get_metric(&doc, MetricName::Jaccard)?,
                timeout_ms,
                trace_id,
            })
        }
        "knn" => Ok(Request::Knn {
            id,
            items: get_items(&doc)?,
            k: get_u64(&doc, "k")?,
            metric: get_metric(&doc, MetricName::Hamming)?,
            timeout_ms,
            trace_id,
        }),
        "insert" => Ok(Request::Insert {
            id,
            tid: get_u64(&doc, "tid")?,
            items: get_items(&doc)?,
            timeout_ms,
            trace_id,
        }),
        "delete" => Ok(Request::Delete {
            id,
            tid: get_u64(&doc, "tid")?,
            timeout_ms,
            trace_id,
        }),
        "upsert" => Ok(Request::Upsert {
            id,
            tid: get_u64(&doc, "tid")?,
            items: get_items(&doc)?,
            timeout_ms,
            trace_id,
        }),
        other => Err(err(format!("unknown request type `{other}`"))),
    }
}

/// Parses a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let text = std::str::from_utf8(payload).map_err(|_| err("payload is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(err("payload must be a JSON object"));
    }
    let id = get_u64(&doc, "id")?;
    let trace_id = get_trace(&doc)?;
    let ok = match doc.get("ok") {
        Some(Json::Bool(b)) => *b,
        _ => return Err(err("missing or non-boolean `ok`")),
    };
    if !ok {
        let e = doc.get("error").ok_or_else(|| err("missing `error`"))?;
        let code_s = get_str(e, "code")?;
        let code = ErrorCode::from_wire(code_s)
            .ok_or_else(|| err(format!("unknown error code `{code_s}`")))?;
        let retry_after_ms = match e.get("retry_after_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| err("`retry_after_ms` must be an integer"))?,
            ),
        };
        return Ok(Response::Error {
            id,
            code,
            message: get_str(e, "message")?.to_string(),
            retry_after_ms,
            trace_id,
        });
    }
    if let Some(applied) = doc.get("applied") {
        let applied = match applied {
            Json::Bool(b) => *b,
            _ => return Err(err("`applied` must be a boolean")),
        };
        let lsn = match doc.get("lsn") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| err("`lsn` must be a u64"))?),
        };
        return Ok(Response::Ack {
            id,
            applied,
            lsn,
            trace_id,
        });
    }
    if let Some(arr) = doc.get("neighbors") {
        let arr = arr
            .as_arr()
            .ok_or_else(|| err("`neighbors` must be an array"))?;
        let mut pairs = Vec::with_capacity(arr.len());
        for pair in arr {
            let p = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| err("`neighbors` entries must be [dist, tid] pairs"))?;
            let dist = p[0]
                .as_f64()
                .ok_or_else(|| err("neighbor dist must be numeric"))?;
            let tid = p[1]
                .as_u64()
                .ok_or_else(|| err("neighbor tid must be a u64"))?;
            pairs.push((dist, tid));
        }
        return Ok(Response::Neighbors {
            id,
            pairs,
            trace_id,
        });
    }
    if let Some(arr) = doc.get("tids") {
        let arr = arr.as_arr().ok_or_else(|| err("`tids` must be an array"))?;
        let tids = arr
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| err("tids must be u64s")))
            .collect::<Result<Vec<u64>, ProtoError>>()?;
        return Ok(Response::Tids { id, tids, trace_id });
    }
    Err(err(
        "ok response carries none of `neighbors`, `tids`, `applied`",
    ))
}
