//! Length-prefixed framing: 4-byte big-endian payload length, then the
//! payload bytes (JSON, see [`crate::proto`]).
//!
//! Two readers are provided. [`read_frame`] is the simple blocking form
//! used by clients and tests. [`FrameReader`] is the server's incremental
//! form: it owns a reassembly buffer, treats read timeouts as
//! [`Step::Pending`] (so a connection worker can poll its shutdown flag
//! between reads without losing partially received bytes), and keeps any
//! excess bytes for the next frame, so pipelined clients work.
//!
//! Malformed input is always an error value, never a panic or a hang: a
//! length prefix that exceeds the frame cap surfaces as
//! [`FrameError::TooLarge`] / [`Step::TooLarge`] *before* any payload is
//! buffered, and a connection that dies mid-frame surfaces as
//! [`FrameError::Truncated`].

use std::io::{self, Read, Write};

/// Default frame-size cap: 1 MiB of JSON is far beyond any legitimate
/// query or answer in this workspace.
pub const MAX_FRAME_DEFAULT: usize = 1 << 20;

/// Bytes of the length prefix.
const PREFIX: usize = 4;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The length prefix announced a payload beyond the configured cap.
    TooLarge {
        /// The announced payload length.
        len: u32,
        /// The configured cap.
        max: usize,
    },
    /// The peer closed the connection in the middle of a frame (including
    /// a truncated length prefix).
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: length prefix, payload, flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32 length"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Blocking read of one frame.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary (the
/// peer hung up between requests); [`FrameError::Truncated`] if the stream
/// ends inside a prefix or payload.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; PREFIX];
    let mut got = 0;
    while got < PREFIX {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated)
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len as usize > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

/// One step of incremental frame reading.
#[derive(Debug)]
pub enum Step {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// No complete frame yet; the read timed out (poll again).
    Pending,
    /// Clean end-of-stream at a frame boundary.
    Eof,
    /// The next frame's announced length exceeds the cap; the connection
    /// cannot be resynchronized and should be closed after an error frame.
    TooLarge(u32),
}

/// Incremental frame reassembly for sockets with a read timeout.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reassembly buffer.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads until one frame is complete, the stream ends, or the read
    /// times out. Partial bytes stay buffered across calls; bytes beyond
    /// the first complete frame are kept for the next call.
    pub fn step(&mut self, r: &mut impl Read, max: usize) -> Result<Step, FrameError> {
        loop {
            if self.buf.len() >= PREFIX {
                let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
                if len as usize > max {
                    return Ok(Step::TooLarge(len));
                }
                let total = PREFIX + len as usize;
                if self.buf.len() >= total {
                    let payload = self.buf[PREFIX..total].to_vec();
                    self.buf.drain(..total);
                    return Ok(Step::Frame(payload));
                }
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(Step::Eof)
                    } else {
                        Err(FrameError::Truncated)
                    }
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Step::Pending)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_blocking() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = Cursor::new(wire);
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_DEFAULT).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(read_frame(&mut r, MAX_FRAME_DEFAULT).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, MAX_FRAME_DEFAULT).unwrap().is_none());
    }

    #[test]
    fn truncated_prefix_is_an_error_not_a_hang() {
        let mut r = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME_DEFAULT),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello world").unwrap();
        wire.truncate(wire.len() - 3);
        let mut r = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME_DEFAULT),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn oversize_frame_rejected_before_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = Cursor::new(wire);
        match read_frame(&mut r, 1024) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn incremental_reader_handles_pipelined_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"second").unwrap();
        let mut r = Cursor::new(wire);
        let mut reader = FrameReader::new();
        match reader.step(&mut r, MAX_FRAME_DEFAULT).unwrap() {
            Step::Frame(p) => assert_eq!(p, b"first"),
            other => panic!("{other:?}"),
        }
        // Second frame is already buffered: no further reads required.
        match reader.step(&mut r, MAX_FRAME_DEFAULT).unwrap() {
            Step::Frame(p) => assert_eq!(p, b"second"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            reader.step(&mut r, MAX_FRAME_DEFAULT).unwrap(),
            Step::Eof
        ));
    }

    #[test]
    fn incremental_reader_flags_oversize() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&1_000_000u32.to_be_bytes());
        let mut r = Cursor::new(wire);
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.step(&mut r, 1024).unwrap(),
            Step::TooLarge(1_000_000)
        ));
    }
}
