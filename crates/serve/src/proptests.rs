//! Property tests for the wire layer: every request/response variant must
//! survive an encode → decode round trip bit-exactly, and malformed bytes
//! (truncation, garbage, chunk-fragmented frames) must surface as error
//! values — never a panic or a hang.

use proptest::prelude::*;
use proptest::strategy::{boxed, Strategy, Union};

use crate::frame::{write_frame, FrameReader, Step, MAX_FRAME_DEFAULT};
use crate::proto::{
    decode_request, decode_response, encode_request, encode_response, ContainmentMode, ErrorCode,
    MetricName, Request, Response,
};

fn items() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..512, 0..20)
}

fn timeout() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        Just(None),
        boxed((1u64..600_000).prop_map(Some)) as Box<dyn Strategy<Value = Option<u64>>>,
    ]
}

fn trace() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        Just(None),
        boxed((0u64..=u64::MAX).prop_map(Some)) as Box<dyn Strategy<Value = Option<u64>>>,
    ]
}

fn metric() -> impl Strategy<Value = MetricName> {
    (0usize..4).prop_map(|i| {
        [
            MetricName::Hamming,
            MetricName::Jaccard,
            MetricName::Dice,
            MetricName::Overlap,
        ][i]
    })
}

fn mode() -> impl Strategy<Value = ContainmentMode> {
    (0usize..3).prop_map(|i| {
        [
            ContainmentMode::Containing,
            ContainmentMode::ContainedIn,
            ContainmentMode::Exact,
        ][i]
    })
}

/// Arbitrary finite `f64`, drawn from the full bit pattern space so the
/// shortest-round-trip formatting claim is exercised on awkward values
/// (subnormals, huge magnitudes), not just tidy fractions.
fn finite_f64() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(|bits| {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            v
        } else {
            0.0
        }
    })
}

/// Text with the characters JSON string escaping must handle.
fn message() -> impl Strategy<Value = String> {
    const PALETTE: [char; 12] = [
        'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '/', 'λ', '∆', '\u{1}',
    ];
    prop::collection::vec(0usize..PALETTE.len(), 0..24)
        .prop_map(|idxs| idxs.into_iter().map(|i| PALETTE[i]).collect())
}

fn request() -> impl Strategy<Value = Request> {
    let containment = (0u64..1_000_000, mode(), items(), timeout(), trace()).prop_map(
        |(id, mode, items, timeout_ms, trace_id)| Request::Containment {
            id,
            mode,
            items,
            timeout_ms,
            trace_id,
        },
    );
    let range = (0u64..1_000_000, items(), 0u32..1000, timeout(), trace()).prop_map(
        |(id, items, r8, timeout_ms, trace_id)| Request::Range {
            id,
            items,
            radius: r8 as f64 / 8.0,
            timeout_ms,
            trace_id,
        },
    );
    let similarity = (
        0u64..1_000_000,
        items(),
        0u32..=8,
        metric(),
        timeout(),
        trace(),
    )
        .prop_map(
            |(id, items, s8, metric, timeout_ms, trace_id)| Request::Similarity {
                id,
                items,
                min_sim: s8 as f64 / 8.0,
                metric,
                timeout_ms,
                trace_id,
            },
        );
    let knn = (
        0u64..1_000_000,
        items(),
        0u64..10_000,
        metric(),
        timeout(),
        trace(),
    )
        .prop_map(
            |(id, items, k, metric, timeout_ms, trace_id)| Request::Knn {
                id,
                items,
                k,
                metric,
                timeout_ms,
                trace_id,
            },
        );
    let insert = (
        0u64..1_000_000,
        0u64..=u64::MAX,
        items(),
        timeout(),
        trace(),
    )
        .prop_map(|(id, tid, items, timeout_ms, trace_id)| Request::Insert {
            id,
            tid,
            items,
            timeout_ms,
            trace_id,
        });
    let delete = (0u64..1_000_000, 0u64..=u64::MAX, timeout(), trace()).prop_map(
        |(id, tid, timeout_ms, trace_id)| Request::Delete {
            id,
            tid,
            timeout_ms,
            trace_id,
        },
    );
    let upsert = (
        0u64..1_000_000,
        0u64..=u64::MAX,
        items(),
        timeout(),
        trace(),
    )
        .prop_map(|(id, tid, items, timeout_ms, trace_id)| Request::Upsert {
            id,
            tid,
            items,
            timeout_ms,
            trace_id,
        });
    Union::new(vec![
        boxed(containment),
        boxed(range),
        boxed(similarity),
        boxed(knn),
        boxed(insert),
        boxed(delete),
        boxed(upsert),
    ])
}

fn response() -> impl Strategy<Value = Response> {
    let neighbors = (
        0u64..1_000_000,
        prop::collection::vec((finite_f64(), 0u64..=u64::MAX), 0..16),
        trace(),
    )
        .prop_map(|(id, pairs, trace_id)| Response::Neighbors {
            id,
            pairs,
            trace_id,
        });
    let tids = (
        0u64..1_000_000,
        prop::collection::vec(0u64..=u64::MAX, 0..32),
        trace(),
    )
        .prop_map(|(id, tids, trace_id)| Response::Tids { id, tids, trace_id });
    let error = (0u64..1_000_000, 0usize..6, message(), timeout(), trace()).prop_map(
        |(id, c, message, retry_after_ms, trace_id)| Response::Error {
            id,
            code: [
                ErrorCode::BadRequest,
                ErrorCode::FrameTooLarge,
                ErrorCode::ServerBusy,
                ErrorCode::DeadlineExceeded,
                ErrorCode::ShuttingDown,
                ErrorCode::Internal,
            ][c],
            message,
            retry_after_ms,
            trace_id,
        },
    );
    let ack = (
        0u64..1_000_000,
        (0u8..2).prop_map(|b| b == 1),
        prop_oneof![
            Just(None),
            boxed((0u64..=u64::MAX).prop_map(Some)) as Box<dyn Strategy<Value = Option<u64>>>,
        ],
        trace(),
    )
        .prop_map(|(id, applied, lsn, trace_id)| Response::Ack {
            id,
            applied,
            lsn,
            trace_id,
        });
    Union::new(vec![
        boxed(neighbors),
        boxed(tids),
        boxed(error),
        boxed(ack),
    ])
}

/// Compares responses with `-0.0`-vs-`0.0` and NaN out of the picture
/// (strategies only generate finite values), but **bit-exactly** on the
/// distances: `PartialEq` on f64 would accept `-0.0 == 0.0`.
fn bits_equal(a: &Response, b: &Response) -> bool {
    match (a, b) {
        (
            Response::Neighbors {
                id: ia,
                pairs: pa,
                trace_id: ta_id,
            },
            Response::Neighbors {
                id: ib,
                pairs: pb,
                trace_id: tb_id,
            },
        ) => {
            ia == ib
                && ta_id == tb_id
                && pa.len() == pb.len()
                && pa
                    .iter()
                    .zip(pb)
                    .all(|(&(da, ta), &(db, tb))| da.to_bits() == db.to_bits() && ta == tb)
        }
        (a, b) => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_roundtrip(req in request()) {
        let wire = encode_request(&req);
        let back = decode_request(&wire).expect("valid request must decode");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_roundtrip(resp in response()) {
        let wire = encode_response(&resp);
        let back = decode_response(&wire).expect("valid response must decode");
        prop_assert!(
            bits_equal(&back, &resp),
            "response changed across the wire: {:?} vs {:?}",
            back,
            resp
        );
    }

    #[test]
    fn truncated_request_is_an_error_not_a_panic(
        req in request(),
        cut_permille in 0u32..1000,
    ) {
        // Any strict prefix of a valid payload is unbalanced JSON.
        let wire = encode_request(&req);
        let cut = (wire.len() * cut_permille as usize) / 1000;
        prop_assert!(decode_request(&wire[..cut]).is_err());
    }

    #[test]
    fn truncated_response_is_an_error_not_a_panic(
        resp in response(),
        cut_permille in 0u32..1000,
    ) {
        let wire = encode_response(&resp);
        let cut = (wire.len() * cut_permille as usize) / 1000;
        prop_assert!(decode_response(&wire[..cut]).is_err());
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoders(
        bytes in prop::collection::vec(0u8..=255, 0..64),
    ) {
        // Any Err is fine; what is being asserted is "returns".
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    #[test]
    fn fragmented_frames_reassemble(
        payloads in prop::collection::vec(prop::collection::vec(0u8..=255, 0..64), 1..6),
        chunk in 1usize..7,
    ) {
        // Write all frames to one buffer, then feed it to the incremental
        // reader through a transport that returns at most `chunk` bytes
        // per read: every frame must come back intact and in order.
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).unwrap();
        }
        struct Dribble<'a> {
            data: &'a [u8],
            pos: usize,
            chunk: usize,
        }
        impl std::io::Read for Dribble<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = (self.data.len() - self.pos).min(self.chunk).min(buf.len());
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let mut r = Dribble { data: &wire, pos: 0, chunk };
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        loop {
            match reader.step(&mut r, MAX_FRAME_DEFAULT).unwrap() {
                Step::Frame(p) => got.push(p),
                Step::Eof => break,
                other => prop_assert!(false, "unexpected step: {:?}", other),
            }
        }
        prop_assert_eq!(got, payloads);
    }
}
