//! `sg-bench-client` — open-/closed-loop load generator for sg-serve.
//!
//! Reports throughput and p50/p95/p99 latency; `--bench-json PATH`
//! appends the run to a `BENCH_serve.json`-style perf-trajectory file.
//!
//! ```text
//! sg-bench-client --addr 127.0.0.1:7878 --mode closed --conns 4 --queries 1000
//! sg-bench-client --addr 127.0.0.1:7878 --mode open --rate 2000
//! ```

use sg_serve::{append_bench_json, run_load, LoadConfig, LoadMode, Workload};

const USAGE: &str = "sg-bench-client: load generator for sg-serve

  --addr HOST:PORT   server address (default 127.0.0.1:7878)
  --mode closed|open loop discipline (default closed)
  --rate QPS         open-loop aggregate arrival rate (default 1000)
  --conns N          concurrent connections (default 4)
  --queries N        total queries (default 1000)
  --nbits N          item universe, must match the server (default 512)
  --query-items N    items per query set (default 8)
  --workload W       mix|knn|containment|range|similarity (default mix)
  --k N              k for k-NN queries (default 10)
  --radius R         Hamming radius for range queries (default 8)
  --min-sim S        similarity threshold (default 0.5)
  --seed N           workload seed (default 20030305)
  --timeout-ms N     per-request timeout_ms sent on the wire
  --trace-sample N   stamp a trace_id on every Nth request (0 = none);
                     the report counts how many came back echoed
  --bench-json PATH  append a perf-trajectory entry to PATH
";

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: `{s}` is not a valid number"))
}

fn parse_opts() -> Result<(LoadConfig, Option<String>), String> {
    let mut cfg = LoadConfig::default();
    let mut rate = 1000.0f64;
    let mut open = false;
    let mut bench_json = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => cfg.addr = val("--addr")?,
            "--mode" => match val("--mode")?.as_str() {
                "closed" => open = false,
                "open" => open = true,
                other => return Err(format!("--mode: unknown mode `{other}`")),
            },
            "--rate" => rate = parse_num(&val("--rate")?, "--rate")?,
            "--conns" => cfg.conns = parse_num(&val("--conns")?, "--conns")?,
            "--queries" => cfg.queries = parse_num(&val("--queries")?, "--queries")?,
            "--nbits" => cfg.nbits = parse_num(&val("--nbits")?, "--nbits")?,
            "--query-items" => {
                cfg.query_items = parse_num(&val("--query-items")?, "--query-items")?
            }
            "--workload" => {
                let w = val("--workload")?;
                cfg.workload = Workload::from_wire(&w)
                    .ok_or_else(|| format!("--workload: unknown workload `{w}`"))?;
            }
            "--k" => cfg.k = parse_num(&val("--k")?, "--k")?,
            "--radius" => cfg.radius = parse_num(&val("--radius")?, "--radius")?,
            "--min-sim" => cfg.min_sim = parse_num(&val("--min-sim")?, "--min-sim")?,
            "--seed" => cfg.seed = parse_num(&val("--seed")?, "--seed")?,
            "--timeout-ms" => {
                cfg.timeout_ms = Some(parse_num(&val("--timeout-ms")?, "--timeout-ms")?)
            }
            "--trace-sample" => {
                cfg.trace_sample = parse_num(&val("--trace-sample")?, "--trace-sample")?
            }
            "--bench-json" => bench_json = Some(val("--bench-json")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    cfg.mode = if open {
        LoadMode::Open { rate_qps: rate }
    } else {
        LoadMode::Closed
    };
    Ok((cfg, bench_json))
}

fn main() {
    let (cfg, bench_json) = match parse_opts() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sg-bench-client: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "sg-bench-client: {} loop, {} conns, {} queries against {}",
        cfg.mode.as_str(),
        cfg.conns,
        cfg.queries,
        cfg.addr
    );
    let report = match run_load(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sg-bench-client: cannot connect to {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    println!("{}", report.render());
    if let Some(path) = bench_json {
        if let Err(e) = append_bench_json(&path, &cfg, &report) {
            eprintln!("sg-bench-client: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("sg-bench-client: appended trajectory entry to {path}");
    }
    // Busy rejections are expected under deliberate overload — but a run
    // where *nothing* got through measured no service at all: surface the
    // server's structured refusal and fail, so scripts don't mistake an
    // all-rejected run for a clean one.
    if report.ok == 0 && report.busy > 0 {
        eprintln!("sg-bench-client: every request was refused with SERVER_BUSY");
        if let Some(frame) = &report.busy_frame {
            eprintln!("sg-bench-client: server error frame: {frame}");
        }
        std::process::exit(3);
    }
    if report.errors > 0 {
        std::process::exit(1);
    }
}
