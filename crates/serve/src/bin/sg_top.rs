//! `sg-top` — live terminal dashboard for a running `sg-serve`.
//!
//! Polls the admin HTTP endpoints — `/metrics/history` for rates and
//! percentiles the server already computed over its sample ring,
//! `/debug/tree` for index health, `/healthz` for the liveness line —
//! and redraws a one-screen summary: q/s with a sparkline, latency
//! percentiles, queue depth, WAL throughput, per-shard visit rates,
//! and the top health findings. Zero dependencies: hand-rolled HTTP
//! over `TcpStream`, ANSI escapes for the redraw.
//!
//! ```text
//! sg-top --admin 127.0.0.1:9090 --interval-ms 1000 --window 60s
//! ```
//!
//! The server must run with sampling on (`sg-serve --sample-ms 250`),
//! otherwise `/metrics/history` answers 404 and sg-top exits with the
//! server's hint.

use sg_obs::json::{self, Json};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

struct Opts {
    admin: String,
    interval_ms: u64,
    window: String,
    /// Frames to render before exiting; 0 = run until killed.
    frames: u64,
    /// Append frames instead of redrawing in place (no ANSI escapes).
    plain: bool,
    /// Render one frame to stdout and exit (implies --plain).
    once: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            admin: "127.0.0.1:9090".into(),
            interval_ms: 1000,
            window: "60s".into(),
            frames: 0,
            plain: false,
            once: false,
        }
    }
}

const USAGE: &str = "sg-top: live dashboard for a running sg-serve

  --admin HOST:PORT   admin HTTP address of the server
                      (default 127.0.0.1:9090; sg-serve prints its own)
  --interval-ms N     refresh interval (default 1000)
  --window W          rate/percentile window passed to /metrics/history,
                      e.g. 60s or 1500ms (default 60s)
  --frames N          render N frames then exit; 0 = until killed
  --plain             no ANSI redraw: append one frame per interval
  --once              render a single frame and exit (implies --plain);
                      for scripts and smoke tests
";

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--admin" => opts.admin = val("--admin")?,
            "--interval-ms" => {
                opts.interval_ms = val("--interval-ms")?
                    .parse()
                    .map_err(|_| "--interval-ms: not a number".to_string())?
            }
            "--window" => opts.window = val("--window")?,
            "--frames" => {
                opts.frames = val("--frames")?
                    .parse()
                    .map_err(|_| "--frames: not a number".to_string())?
            }
            "--plain" => opts.plain = true,
            "--once" => {
                opts.once = true;
                opts.plain = true;
                opts.frames = 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// One admin round trip; returns the status code and body.
fn http_get(admin: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(admin).map_err(|e| format!("connect {admin}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: sg-top\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

// ----------------------------------------------------------- extraction

fn metric<'a>(history: &'a Json, name: &str) -> Option<&'a Json> {
    history.get("metrics")?.get(name)
}

fn rate(history: &Json, name: &str) -> f64 {
    metric(history, name)
        .and_then(|m| m.get("rate_per_s"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

fn gauge_last(history: &Json, name: &str) -> i64 {
    metric(history, name)
        .and_then(|m| m.get("last"))
        .and_then(Json::as_i64)
        .unwrap_or(0)
}

fn hist_ns(history: &Json, name: &str, key: &str) -> u64 {
    metric(history, name)
        .and_then(|m| m.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Per-interval deltas of a cumulative counter series (nulls skipped).
fn counter_deltas(history: &Json, name: &str) -> Vec<u64> {
    let values: Vec<u64> = metric(history, name)
        .and_then(|m| m.get("values"))
        .and_then(Json::as_arr)
        .map(|a| a.iter().filter_map(Json::as_u64).collect())
        .unwrap_or_default();
    values
        .windows(2)
        .map(|w| w[1].saturating_sub(w[0]))
        .collect()
}

// ------------------------------------------------------------ rendering

fn sparkline(deltas: &[u64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let tail = &deltas[deltas.len().saturating_sub(width)..];
    let max = tail.iter().copied().max().unwrap_or(0).max(1);
    tail.iter()
        .map(|&d| BARS[(d as usize * (BARS.len() - 1)) / max as usize])
        .collect()
}

fn fmt_count(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

fn fmt_bytes(v: f64) -> String {
    if v >= 1048576.0 {
        format!("{:.1} MiB", v / 1048576.0)
    } else if v >= 1024.0 {
        format!("{:.1} KiB", v / 1024.0)
    } else {
        format!("{v:.0} B")
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}ms", ns as f64 / 1e6)
}

fn bar(v: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((v / max) * width as f64).round() as usize
    } else {
        0
    };
    "█".repeat(n.min(width))
}

/// The top-N self-time span names from a `/debug/profile?format=json`
/// document, rendered `name 42%` against the total sampled CPU.
fn hot_spans(profile: &Json, n: usize) -> Vec<String> {
    let selfs = match profile.get("self").and_then(Json::as_arr) {
        Some(a) => a,
        None => return Vec::new(),
    };
    let total: u64 = selfs
        .iter()
        .filter_map(|s| s.get("cpu_ns").and_then(Json::as_u64))
        .sum();
    let mut rows: Vec<(String, u64)> = selfs
        .iter()
        .filter_map(|s| {
            let name = s.get("name").and_then(Json::as_str)?.to_string();
            let cpu = s.get("cpu_ns").and_then(Json::as_u64)?;
            Some((name, cpu))
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    rows.truncate(n);
    rows.into_iter()
        .map(|(name, cpu)| {
            if total > 0 {
                format!("{name} {:.0}%", cpu as f64 * 100.0 / total as f64)
            } else {
                name
            }
        })
        .collect()
}

fn render(
    opts: &Opts,
    frame: u64,
    history: &Json,
    tree: Option<&Json>,
    profile: Option<&Json>,
    healthz: &str,
) -> String {
    let mut out = String::new();
    let push = |out: &mut String, line: String| {
        out.push_str(&line);
        if !opts.plain {
            // Clear to end of line so shorter redraws leave no residue.
            out.push_str("\x1b[K");
        }
        out.push('\n');
    };

    let span_ms = history.get("span_ms").and_then(Json::as_u64).unwrap_or(0);
    let samples = history.get("samples").and_then(Json::as_u64).unwrap_or(0);
    push(
        &mut out,
        format!(
            "sg-top — {}   frame {}   window {:.1}s ({} samples)   healthz: {}",
            opts.admin,
            frame,
            span_ms as f64 / 1e3,
            samples,
            healthz.trim()
        ),
    );
    push(
        &mut out,
        format!(
            "queries   {:>8} q/s  {}   busy {}/s  timeouts {}/s  errors {}/s",
            fmt_count(rate(history, "serve.requests")),
            sparkline(&counter_deltas(history, "serve.requests"), 24),
            fmt_count(rate(history, "serve.busy_rejected")),
            fmt_count(rate(history, "serve.timeouts")),
            fmt_count(rate(history, "serve.errors")),
        ),
    );
    push(
        &mut out,
        format!(
            "latency   p50 {}  p99 {}  mean {}",
            fmt_ms(hist_ns(history, "serve.request_ns", "p50")),
            fmt_ms(hist_ns(history, "serve.request_ns", "p99")),
            fmt_ns_mean(history),
        ),
    );
    push(
        &mut out,
        format!(
            "serve     queue {}   conns {}   batches {}/s   draining {}",
            gauge_last(history, "serve.queue.depth"),
            gauge_last(history, "serve.connections"),
            fmt_count(rate(history, "serve.batches")),
            gauge_last(history, "serve.draining"),
        ),
    );
    push(
        &mut out,
        format!(
            "wal       {}/s   writes {}/s   syncs {}/s",
            fmt_bytes(rate(history, "ingest.wal_bytes")),
            fmt_count(rate(history, "ingest.writes")),
            fmt_count(rate(history, "ingest.wal_syncs")),
        ),
    );
    // Page-store row: present only when the server runs --storage=mmap
    // (the metrics exist only once a CowStore registered them).
    if metric(history, "store.pages_mapped").is_some() {
        push(
            &mut out,
            format!(
                "storage   mapped {}   dirty {}   pins {}   lag {} lsns   \
                 flips {}/s   freed {}/s",
                gauge_last(history, "store.pages_mapped"),
                gauge_last(history, "store.pages_dirty"),
                gauge_last(history, "store.snapshot_pins"),
                gauge_last(history, "store.checkpoint_lag"),
                fmt_count(rate(history, "store.meta_flips")),
                fmt_count(rate(history, "store.pages_freed")),
            ),
        );
    }

    // Per-shard visit rates, scaled against the hottest shard.
    let mut shard_rates = Vec::new();
    for i in 0.. {
        match metric(history, &format!("exec.shard{i}.visits")) {
            Some(_) => shard_rates.push(rate(history, &format!("exec.shard{i}.visits"))),
            None => break,
        }
    }
    if !shard_rates.is_empty() {
        push(&mut out, "shards    (node visits/s)".to_string());
        let max = shard_rates.iter().cloned().fold(0.0_f64, f64::max);
        for (i, r) in shard_rates.iter().enumerate() {
            push(
                &mut out,
                format!("  shard{i:<3} {:<24} {}", bar(*r, max, 24), fmt_count(*r)),
            );
        }
    }

    // Hot spans: where sampled CPU self-time concentrates, from the
    // span-stack profiler (present only with sg-serve --profile-hz N).
    if let Some(p) = profile {
        let running = matches!(p.get("running"), Some(Json::Bool(true)));
        let hot = hot_spans(p, 3);
        if running && !hot.is_empty() {
            push(&mut out, format!("hot spans {}", hot.join("   ")));
        }
    }

    match tree {
        Some(t) => {
            let status = t.get("status").and_then(Json::as_str).unwrap_or("?");
            let summary = t.get("summary");
            let len = summary
                .and_then(|s| s.get("len"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let nodes = summary
                .and_then(|s| s.get("nodes"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            push(
                &mut out,
                format!("health    status={status}   len={len}   nodes={nodes}"),
            );
            let findings = summary
                .and_then(|s| s.get("findings"))
                .and_then(Json::as_arr)
                .unwrap_or(&[]);
            for f in findings.iter().take(3) {
                let sev = f.get("severity").and_then(Json::as_str).unwrap_or("?");
                let msg = f.get("message").and_then(Json::as_str).unwrap_or("");
                let msg: String = msg.chars().take(70).collect();
                push(&mut out, format!("  [{sev}] {msg}"));
            }
            if findings.len() > 3 {
                push(
                    &mut out,
                    format!("  … {} more findings", findings.len() - 3),
                );
            }
        }
        None => push(&mut out, "health    (/debug/tree unavailable)".to_string()),
    }
    out
}

fn fmt_ns_mean(history: &Json) -> String {
    let mean = metric(history, "serve.request_ns")
        .and_then(|m| m.get("mean"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    format!("{:.2}ms", mean / 1e6)
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sg-top: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut frame = 0u64;
    loop {
        frame += 1;
        let (status, body) = match http_get(
            &opts.admin,
            &format!("/metrics/history?window={}", opts.window),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sg-top: {e}");
                std::process::exit(1);
            }
        };
        if status == 404 {
            // The server's own hint says how to turn sampling on.
            eprintln!("sg-top: {}", body.trim());
            std::process::exit(1);
        }
        let history = match json::parse(&body) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("sg-top: /metrics/history is not JSON: {e}");
                std::process::exit(1);
            }
        };
        let tree = http_get(&opts.admin, "/debug/tree")
            .ok()
            .filter(|(s, _)| *s == 200)
            .and_then(|(_, b)| json::parse(&b).ok());
        let healthz = http_get(&opts.admin, "/healthz")
            .map(|(_, b)| b)
            .unwrap_or_else(|_| "unreachable".into());
        let profile = http_get(&opts.admin, "/debug/profile?format=json")
            .ok()
            .filter(|(s, _)| *s == 200)
            .and_then(|(_, b)| json::parse(&b).ok());

        let screen = render(
            &opts,
            frame,
            &history,
            tree.as_ref(),
            profile.as_ref(),
            &healthz,
        );
        if opts.plain {
            println!("{screen}");
        } else {
            // Home the cursor and clear below; cheaper than a full clear
            // and flicker-free on every terminal that matters.
            print!("\x1b[H{screen}\x1b[J");
        }
        let _ = std::io::stdout().flush();

        if opts.frames > 0 && frame >= opts.frames {
            return;
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms.max(50)));
    }
}
