//! `sg-serve` — serve a generated SG-tree dataset over TCP.
//!
//! Builds a synthetic dataset (deterministic in `--seed`), shards it
//! across a [`sg_exec::ShardedExecutor`], and serves the frame protocol
//! until SIGTERM/SIGINT, then drains gracefully: stops accepting, answers
//! every in-flight request, joins all threads, and prints a drain summary
//! (the CI smoke test greps for it).
//!
//! ```text
//! sg-serve --addr 127.0.0.1:7878 --rows 20000 --nbits 512 --shards 4
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sg_exec::{DurabilityConfig, ExecConfig, FsyncPolicy, ShardedExecutor, StorageMode, WriteOp};
use sg_obs::Registry;
use sg_serve::{BatchPolicy, ServeConfig, Server};
use sg_sig::Signature;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Global shutdown flag flipped from the signal handler; handlers may only
/// perform async-signal-safe work, so an atomic store is all they do.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// SIGUSR1 flag: the main loop notices it and dumps the flight recorder.
static DUMP: AtomicBool = AtomicBool::new(false);
/// SIGUSR2 flag: the main loop notices it and dumps the folded profile.
static DUMP_PROFILE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod signals {
    use super::{DUMP, DUMP_PROFILE, SHUTDOWN};
    use std::sync::atomic::Ordering;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        const SIGUSR1: i32 = 10;
        const SIGUSR2: i32 = 12;
        if signum == SIGUSR1 {
            DUMP.store(true, Ordering::SeqCst);
        } else if signum == SIGUSR2 {
            DUMP_PROFILE.store(true, Ordering::SeqCst);
        } else {
            SHUTDOWN.store(true, Ordering::SeqCst);
        }
    }

    /// Installs SIGINT/SIGTERM (drain), SIGUSR1 (flight dump), and
    /// SIGUSR2 (profile dump) handlers.
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGUSR1: i32 = 10;
        const SIGUSR2: i32 = 12;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGUSR1, on_signal);
            signal(SIGUSR2, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod signals {
    /// No signal handling off Unix; shut down by killing the process.
    pub fn install() {}
}

struct Opts {
    addr: String,
    admin_addr: Option<String>,
    port_file: Option<String>,
    rows: usize,
    nbits: u32,
    row_items: usize,
    seed: u64,
    shards: usize,
    exec_threads: usize,
    conn_workers: usize,
    max_batch: usize,
    max_wait_us: u64,
    queue_cap: usize,
    timeout_ms: u64,
    data_dir: Option<String>,
    fsync: FsyncPolicy,
    storage: StorageMode,
    checkpoint_ms: Option<u64>,
    trace: bool,
    slow_ms: Option<u64>,
    profile_hz: u32,
    sample_ms: Option<u64>,
    history_cap: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            addr: "127.0.0.1:0".into(),
            admin_addr: Some("127.0.0.1:0".into()),
            port_file: None,
            rows: 20_000,
            nbits: 512,
            row_items: 12,
            seed: 20030305,
            shards: 4,
            exec_threads: 0,
            conn_workers: 8,
            max_batch: 32,
            max_wait_us: 500,
            queue_cap: 256,
            timeout_ms: 1000,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            storage: StorageMode::Heap,
            checkpoint_ms: None,
            trace: false,
            slow_ms: None,
            profile_hz: 0,
            sample_ms: None,
            history_cap: 512,
        }
    }
}

const USAGE: &str = "sg-serve: serve a generated SG-tree dataset over TCP

  --addr HOST:PORT        query listener (default 127.0.0.1:0)
  --admin-addr HOST:PORT  admin HTTP listener for /metrics and /healthz
  --no-admin              disable the admin listener
  --port-file PATH        write `data_port\\nadmin_port\\n` once bound
  --rows N                dataset size (default 20000)
  --nbits N               signature bits / item universe (default 512)
  --row-items N           items per generated transaction (default 12)
  --seed N                dataset RNG seed (default 20030305)
  --shards N              SG-tree shards (default 4)
  --exec-threads N        executor pool threads, 0 = one per shard
  --conn-workers N        connection handler threads (default 8)
  --max-batch N           micro-batch size cap (default 32)
  --max-wait-us N         micro-batch window, microseconds (default 500)
  --queue-cap N           admission queue capacity (default 256)
  --timeout-ms N          default per-request deadline (default 1000)
  --data-dir PATH         run durably: WAL + checkpoints under PATH,
                          replayed on restart; live writes survive kill -9
  --fsync always|os       WAL sync policy with --data-dir (default always)
  --storage heap|mmap     what the WAL checkpoints into (default heap):
                          `mmap` stores shard trees in a memory-mapped
                          copy-on-write page file — queries run on pinned
                          snapshots and restart replays only the WAL tail
  --checkpoint-ms N       fold the WAL into the checkpoint every N ms in
                          the background (bounds log size and restart)
  --trace                 turn on the flight recorder (spans served at
                          /debug/flight; kill -USR1 dumps them to a file)
  --slow-ms N             capture requests slower than N ms, with their
                          span tree and EXPLAIN trace, at /debug/slow
  --profile-hz N          sample every thread's live span stack N times a
                          second into folded stacks, served at
                          /debug/profile (kill -USR2 dumps them to a
                          file); 0 = off (default)
  --sample-ms N           sample every metric into an in-memory ring every
                          N ms, served as JSON at /metrics/history
  --history-cap N         samples kept by the history ring (default 512)
";

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => opts.addr = val("--addr")?,
            "--admin-addr" => opts.admin_addr = Some(val("--admin-addr")?),
            "--no-admin" => opts.admin_addr = None,
            "--port-file" => opts.port_file = Some(val("--port-file")?),
            "--rows" => opts.rows = parse_num(&val("--rows")?, "--rows")?,
            "--nbits" => opts.nbits = parse_num(&val("--nbits")?, "--nbits")?,
            "--row-items" => opts.row_items = parse_num(&val("--row-items")?, "--row-items")?,
            "--seed" => opts.seed = parse_num(&val("--seed")?, "--seed")?,
            "--shards" => opts.shards = parse_num(&val("--shards")?, "--shards")?,
            "--exec-threads" => {
                opts.exec_threads = parse_num(&val("--exec-threads")?, "--exec-threads")?
            }
            "--conn-workers" => {
                opts.conn_workers = parse_num(&val("--conn-workers")?, "--conn-workers")?
            }
            "--max-batch" => opts.max_batch = parse_num(&val("--max-batch")?, "--max-batch")?,
            "--max-wait-us" => {
                opts.max_wait_us = parse_num(&val("--max-wait-us")?, "--max-wait-us")?
            }
            "--queue-cap" => opts.queue_cap = parse_num(&val("--queue-cap")?, "--queue-cap")?,
            "--timeout-ms" => opts.timeout_ms = parse_num(&val("--timeout-ms")?, "--timeout-ms")?,
            "--data-dir" => opts.data_dir = Some(val("--data-dir")?),
            "--fsync" => {
                opts.fsync = match val("--fsync")?.as_str() {
                    "always" => FsyncPolicy::Always,
                    "os" => FsyncPolicy::OsOnly,
                    other => return Err(format!("--fsync: `{other}` is not `always` or `os`")),
                }
            }
            "--storage" => {
                let v = val("--storage")?;
                opts.storage = StorageMode::parse(&v)
                    .ok_or_else(|| format!("--storage: `{v}` is not `heap` or `mmap`"))?;
            }
            "--checkpoint-ms" => {
                opts.checkpoint_ms = Some(parse_num(&val("--checkpoint-ms")?, "--checkpoint-ms")?)
            }
            "--trace" => opts.trace = true,
            "--slow-ms" => opts.slow_ms = Some(parse_num(&val("--slow-ms")?, "--slow-ms")?),
            "--profile-hz" => opts.profile_hz = parse_num(&val("--profile-hz")?, "--profile-hz")?,
            "--sample-ms" => opts.sample_ms = Some(parse_num(&val("--sample-ms")?, "--sample-ms")?),
            "--history-cap" => {
                opts.history_cap = parse_num(&val("--history-cap")?, "--history-cap")?
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: `{s}` is not a valid number"))
}

/// SIGUSR1 postmortem dump: writes the flight recorder's contents as
/// Chrome `trace_event` JSON to `<data-dir>/flight-<unix_ms>.json` (or
/// the working directory when the server runs without durability).
fn dump_flight(data_dir: Option<&str>) {
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let dir = std::path::Path::new(data_dir.unwrap_or("."));
    let path = dir.join(format!("flight-{unix_ms}.json"));
    let body = sg_obs::span::flight_trace_json().to_string_compact();
    match std::fs::write(&path, &body) {
        Ok(()) => eprintln!(
            "sg-serve: flight recorder dumped to {} ({} bytes)",
            path.display(),
            body.len()
        ),
        Err(e) => eprintln!("sg-serve: flight dump to {} failed: {e}", path.display()),
    }
}

/// SIGUSR2 postmortem dump: writes the profiler's folded stacks to
/// `<data-dir>/profile-<unix_ms>.folded` (or the working directory when
/// the server runs without durability) — `flamegraph.pl`-ready.
fn dump_profile(data_dir: Option<&str>) {
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let dir = std::path::Path::new(data_dir.unwrap_or("."));
    let path = dir.join(format!("profile-{unix_ms}.folded"));
    let body = sg_obs::prof::folded_text();
    match std::fs::write(&path, &body) {
        Ok(()) => eprintln!(
            "sg-serve: profile dumped to {} ({} bytes)",
            path.display(),
            body.len()
        ),
        Err(e) => eprintln!("sg-serve: profile dump to {} failed: {e}", path.display()),
    }
}

/// The deterministic synthetic dataset: clustered transactions, the same
/// shape the bench workloads use.
fn generate(rows: usize, nbits: u32, row_items: usize, seed: u64) -> Vec<(u64, Signature)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows as u64)
        .map(|tid| {
            // A soft cluster center plus per-row jitter, so containment and
            // similarity queries have non-trivial answers.
            let center = rng.gen_range(0..nbits.max(16) / 4) * 4;
            let items: Vec<u32> = (0..row_items)
                .map(|_| (center + rng.gen_range(0..nbits / 2)) % nbits)
                .collect();
            (tid, Signature::from_items(nbits, &items))
        })
        .collect()
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sg-serve: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    signals::install();
    if opts.trace {
        sg_obs::span::set_enabled(true);
        eprintln!("sg-serve: flight recorder on");
    }
    if let Some(ms) = opts.slow_ms {
        sg_obs::span::set_slow_threshold_ns(ms.saturating_mul(1_000_000));
        eprintln!("sg-serve: slow-query capture at {ms}ms");
    }
    if opts.profile_hz > 0 {
        if sg_obs::prof::start(opts.profile_hz) {
            eprintln!(
                "sg-serve: span-stack profiler on at {} Hz",
                sg_obs::prof::hz()
            );
        } else {
            eprintln!("sg-serve: profiler already running; --profile-hz ignored");
        }
    }

    let exec_config = ExecConfig {
        shards: opts.shards.max(1),
        threads: opts.exec_threads,
        ..ExecConfig::default()
    };
    let exec = match &opts.data_dir {
        Some(dir) => {
            eprintln!(
                "sg-serve: opening durable index at {dir} (storage={})",
                opts.storage.as_str()
            );
            let durability = DurabilityConfig {
                dir: dir.into(),
                fsync: opts.fsync,
                storage: opts.storage,
            };
            let exec = match ShardedExecutor::open_durable(opts.nbits, &exec_config, &durability) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("sg-serve: cannot open {dir}: {e}");
                    std::process::exit(1);
                }
            };
            if let Some(rec) = exec.recovery() {
                eprintln!(
                    "sg-serve: recovered {} records ({} from checkpoint, {} from wal, \
                     {} torn bytes discarded)",
                    rec.replayed, rec.snapshot_entries, rec.wal_records, rec.truncated_bytes
                );
            }
            // Seed a fresh durable index with the synthetic dataset; a
            // restart serves the recovered data instead of re-seeding.
            if exec.is_empty() && opts.rows > 0 {
                eprintln!(
                    "sg-serve: seeding empty durable index ({} rows, {} bits)",
                    opts.rows, opts.nbits
                );
                let data = generate(opts.rows, opts.nbits, opts.row_items, opts.seed);
                for chunk in data.chunks(1024) {
                    let ops = chunk
                        .iter()
                        .map(|(tid, sig)| WriteOp::Insert {
                            tid: *tid,
                            sig: sig.clone(),
                        })
                        .collect();
                    for ack in exec.write_batch(ops) {
                        if let Err(e) = ack {
                            eprintln!("sg-serve: seeding failed: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                if let Err(e) = exec.checkpoint() {
                    eprintln!("sg-serve: checkpoint after seeding failed: {e}");
                    std::process::exit(1);
                }
            }
            Arc::new(exec)
        }
        None => {
            eprintln!(
                "sg-serve: building index ({} rows, {} bits, {} shards)",
                opts.rows, opts.nbits, opts.shards
            );
            let data = generate(opts.rows, opts.nbits, opts.row_items, opts.seed);
            Arc::new(
                ShardedExecutor::build(opts.nbits, &data, &exec_config)
                    .expect("build sharded executor"),
            )
        }
    };

    let registry = Arc::new(Registry::new());
    exec.register_obs(&registry, "exec");
    exec.register_ingest_obs(&registry, "ingest");
    exec.register_store_obs(&registry, "store");
    let _checkpointer = opts
        .checkpoint_ms
        .filter(|_| opts.data_dir.is_some())
        .map(|ms| {
            eprintln!(
                "sg-serve: background checkpointer on ({}ms interval)",
                ms.max(1)
            );
            exec.start_checkpointer(Duration::from_millis(ms.max(1)))
        });
    let config = ServeConfig {
        addr: opts.addr.clone(),
        admin_addr: opts.admin_addr.clone(),
        conn_workers: opts.conn_workers,
        policy: BatchPolicy {
            max_batch: opts.max_batch.max(1),
            max_wait: Duration::from_micros(opts.max_wait_us),
            queue_cap: opts.queue_cap.max(1),
        },
        default_timeout: Duration::from_millis(opts.timeout_ms.max(1)),
        sample_interval: opts.sample_ms.map(|ms| Duration::from_millis(ms.max(1))),
        history_capacity: opts.history_cap.max(2),
        ..ServeConfig::default()
    };
    if let Some(ms) = opts.sample_ms {
        eprintln!(
            "sg-serve: metric history on ({}ms interval, {} samples)",
            ms.max(1),
            opts.history_cap
        );
    }
    let server = match Server::start(Arc::clone(&exec), registry, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sg-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("sg-serve: listening on {}", server.local_addr());
    if let Some(admin) = server.admin_addr() {
        println!(
            "sg-serve: admin http on {admin} (/metrics, /metrics/history, /healthz, \
             /debug/tree, /debug/flight, /debug/slow, /debug/profile, /debug/costs)"
        );
    }
    if let Some(path) = &opts.port_file {
        let admin_port = server.admin_addr().map(|a| a.port()).unwrap_or(0);
        let body = format!("{}\n{}\n", server.local_addr().port(), admin_port);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("sg-serve: cannot write --port-file {path}: {e}");
            std::process::exit(1);
        }
    }

    while !SHUTDOWN.load(Ordering::SeqCst) {
        if DUMP.swap(false, Ordering::SeqCst) {
            dump_flight(opts.data_dir.as_deref());
        }
        if DUMP_PROFILE.swap(false, Ordering::SeqCst) {
            dump_profile(opts.data_dir.as_deref());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("sg-serve: shutdown requested, draining");
    if opts.profile_hz > 0 {
        sg_obs::prof::stop();
    }
    let report = server.join();
    // Every acknowledged write is already on the WAL; the checkpoint just
    // makes the next open fast (snapshot + short tail).
    if opts.data_dir.is_some() {
        match exec.checkpoint() {
            Ok(()) => eprintln!("sg-serve: checkpoint written"),
            Err(e) => eprintln!("sg-serve: checkpoint on drain failed: {e}"),
        }
    }
    println!(
        "sg-serve: drain complete (served={}, busy_rejected={}, timeouts={}, errors={})",
        report.requests, report.busy_rejected, report.timeouts, report.errors
    );
}
