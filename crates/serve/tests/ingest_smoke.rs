//! End-to-end ingest smoke test over real sockets: a client streams
//! inserts (interleaved with queries reading its own writes) into a
//! server backed by a *durable* executor, the server is dropped without a
//! checkpoint, and a reopen of the same directory must replay every
//! acknowledged write from the WAL — the network analogue of
//! `tests/crash_recovery.rs`, minus the SIGKILL (which needs a separate
//! process and lives there and in CI's `ingest-smoke` job).

use sg_exec::{DurabilityConfig, ExecConfig, Partitioner, ShardedExecutor};
use sg_obs::Registry;
use sg_serve::{Client, MetricName, Response, ServeConfig, Server};
use std::sync::Arc;

const NBITS: u32 = 128;
const SHARDS: usize = 2;
const ROWS: u64 = 400;

fn items_for(tid: u64) -> Vec<u32> {
    // Clustered (a shared pair per group of 16) plus a base-48 encoding
    // of the tid itself, so rows overlap heavily yet no two rows share a
    // signature: exact-match and distance-0 probes are unambiguous.
    vec![
        (tid % 16) as u32,
        16 + (tid % 16) as u32,
        32 + (tid % 48) as u32,
        80 + (tid / 48) as u32,
    ]
}

fn open_exec(dir: &std::path::Path) -> ShardedExecutor {
    ShardedExecutor::open_durable(
        NBITS,
        &ExecConfig {
            shards: SHARDS,
            partitioner: Partitioner::RoundRobin,
            ..ExecConfig::default()
        },
        &DurabilityConfig::new(dir),
    )
    .expect("open durable executor")
}

#[test]
fn streamed_inserts_survive_reopen_and_are_readable_mid_stream() {
    let dir = std::env::temp_dir().join(format!("sg-ingest-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: serve an empty durable index, stream writes over TCP.
    {
        let exec = Arc::new(open_exec(&dir));
        assert!(exec.is_empty());
        let registry = Arc::new(Registry::new());
        let obs = exec.register_ingest_obs(&registry, "ingest");
        let server = Server::start(
            Arc::clone(&exec),
            registry,
            ServeConfig {
                admin_addr: None,
                ..ServeConfig::default()
            },
        )
        .expect("start server");
        let mut client = Client::connect(server.local_addr()).expect("connect");

        let mut acked = 0u64;
        for tid in 0..ROWS {
            match client.insert(tid, &items_for(tid), None).expect("insert") {
                Response::Ack { applied, lsn, .. } => {
                    assert!(applied, "fresh tid {tid} must apply");
                    assert!(lsn.is_some(), "durable ack must carry a WAL lsn");
                    acked += 1;
                }
                other => panic!("insert got {other:?}"),
            }
            // Read-your-writes through the same micro-batching pipeline:
            // a k-NN probe for the row just written must find it at
            // distance zero.
            if tid % 50 == 0 {
                match client
                    .knn(&items_for(tid), 1, MetricName::Hamming, None)
                    .expect("knn")
                {
                    Response::Neighbors { pairs, .. } => {
                        assert_eq!(pairs.first().map(|&(_, t)| t), Some(tid));
                        assert_eq!(pairs.first().map(|&(d, _)| d), Some(0.0));
                    }
                    other => panic!("knn got {other:?}"),
                }
            }
        }
        // Duplicate insert: refused as a structured error, not applied.
        match client.insert(0, &items_for(0), None).expect("dup insert") {
            Response::Error { .. } => {}
            other => panic!("duplicate insert got {other:?}"),
        }
        // Delete + re-insert round trip.
        match client.delete(7, None).expect("delete") {
            Response::Ack { applied, .. } => assert!(applied),
            other => panic!("delete got {other:?}"),
        }
        match client.upsert(7, &items_for(7), None).expect("upsert") {
            Response::Ack { applied, .. } => assert!(applied),
            other => panic!("upsert got {other:?}"),
        }

        assert_eq!(acked, ROWS);
        // ROWS inserts + the delete + the upsert acked; the duplicate
        // insert was rejected before touching the WAL.
        assert_eq!(obs.writes.get(), ROWS + 2);
        assert_eq!(obs.rejected.get(), 1);
        drop(client);
        server.join();
        // No checkpoint: recovery must come from the WAL alone.
    }

    // Phase 2: reopen the directory; every acked write must be there.
    let exec = open_exec(&dir);
    let report = exec.recovery().expect("reopen has a recovery report");
    assert!(report.wal_records >= ROWS, "WAL lost acked writes");
    assert_eq!(exec.len(), ROWS);
    for tid in (0..ROWS).step_by(37) {
        let q = sg_sig::Signature::from_items(NBITS, &items_for(tid));
        assert!(
            exec.exact(&q).0.contains(&tid),
            "tid {tid} missing after reopen"
        );
    }
    drop(exec);
    let _ = std::fs::remove_dir_all(&dir);
}
