//! Admin-endpoint smoke tests over real sockets: the metric-history ring
//! (`/metrics/history`), the tree-health document (`/debug/tree`), the
//! degraded-but-200 `/healthz` detail, and the byte-bounded
//! `/debug/flight` — all through the same one-request-per-connection
//! HTTP path that `curl` and `sg-top` use.

use sg_exec::{ExecConfig, Partitioner, ShardedExecutor};
use sg_obs::json::Json;
use sg_obs::Registry;
use sg_serve::{Client, MetricName, Response, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const NBITS: u32 = 128;
const SHARDS: usize = 2;

fn items_for(tid: u64) -> Vec<u32> {
    vec![
        (tid % 16) as u32,
        16 + (tid % 16) as u32,
        32 + (tid % 48) as u32,
        80 + (tid / 48) as u32,
    ]
}

fn build_exec(rows: u64) -> Arc<ShardedExecutor> {
    let data: Vec<_> = (0..rows)
        .map(|tid| (tid, sg_sig::Signature::from_items(NBITS, &items_for(tid))))
        .collect();
    Arc::new(
        ShardedExecutor::build(
            NBITS,
            &data,
            &ExecConfig {
                shards: SHARDS,
                partitioner: Partitioner::RoundRobin,
                ..ExecConfig::default()
            },
        )
        .expect("build executor"),
    )
}

/// One admin round trip: status line and body of `GET path`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn history_tree_and_healthz_round_trip() {
    let exec = build_exec(400);
    let registry = Arc::new(Registry::new());
    exec.register_obs(&registry, "exec");
    let server = Server::start(
        exec,
        registry,
        ServeConfig {
            sample_interval: Some(Duration::from_millis(5)),
            history_capacity: 32,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let admin = server.admin_addr().expect("admin bound");

    // Traffic, so the counters in the ring actually move.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for tid in 0..20u64 {
        match client
            .knn(&items_for(tid), 3, MetricName::Hamming, None)
            .expect("knn")
        {
            Response::Neighbors { pairs, .. } => assert_eq!(pairs.len(), 3),
            other => panic!("knn got {other:?}"),
        }
    }
    std::thread::sleep(Duration::from_millis(40));

    // /metrics/history: ≥2 samples, a JSON document per metric, and the
    // serve.requests counter both present and monotone.
    let (status, body) = http_get(admin, "/metrics/history");
    assert!(status.contains("200"), "history status: {status}");
    let doc = sg_obs::json::parse(&body).expect("history is JSON");
    let samples = doc.get("samples").and_then(Json::as_u64).unwrap();
    assert!(samples >= 2, "expected >=2 samples, got {samples}");
    let requests = doc
        .get("metrics")
        .and_then(|m| m.get("serve.requests"))
        .expect("serve.requests series");
    assert_eq!(requests.get("type").and_then(Json::as_str), Some("counter"));
    let values = requests.get("values").and_then(Json::as_arr).unwrap();
    assert_eq!(values.len() as u64, samples);
    let v: Vec<u64> = values.iter().map(|j| j.as_u64().unwrap()).collect();
    assert!(v.windows(2).all(|w| w[0] <= w[1]), "counter not monotone");
    assert_eq!(*v.last().unwrap(), 20, "all 20 requests in the last sample");
    assert!(requests.get("delta").and_then(Json::as_u64).is_some());

    // A window narrows the sample count but never empties it.
    let (status, body) = http_get(admin, "/metrics/history?window=10ms");
    assert!(status.contains("200"));
    let windowed = sg_obs::json::parse(&body).unwrap();
    let w = windowed.get("samples").and_then(Json::as_u64).unwrap();
    assert!((1..=samples + 8).contains(&w), "windowed samples: {w}");

    // /debug/tree: parses, covers every shard, and carries the summary.
    let (status, body) = http_get(admin, "/debug/tree");
    assert!(status.contains("200"), "tree status: {status}");
    let tree = sg_obs::json::parse(&body).expect("/debug/tree is JSON");
    assert!(tree.get("status").and_then(Json::as_str).is_some());
    let shards = tree.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(shards.len(), SHARDS);
    for s in shards {
        let report = s.get("report").expect("per-shard report");
        assert!(report.get("levels").and_then(Json::as_arr).is_some());
    }
    let summary = tree.get("summary").expect("merged summary");
    assert_eq!(summary.get("len").and_then(Json::as_u64), Some(400));

    // /healthz while serving: 200 whether or not findings fired; a
    // degraded body still names the top finding.
    let (status, body) = http_get(admin, "/healthz");
    assert!(status.contains("200"), "healthz status: {status}");
    assert!(
        body.starts_with("ok") || body.starts_with("degraded ("),
        "healthz body: {body}"
    );

    drop(client);
    server.join();
}

#[test]
fn history_is_404_with_hint_when_sampling_off() {
    let exec = build_exec(50);
    let server = Server::start(exec, Arc::new(Registry::new()), ServeConfig::default())
        .expect("start server");
    let admin = server.admin_addr().expect("admin bound");
    let (status, body) = http_get(admin, "/metrics/history");
    assert!(status.contains("404"), "status: {status}");
    assert!(body.contains("--sample-ms"), "hint missing: {body}");
    server.join();
}

#[test]
fn flight_over_cap_is_413_and_limit_brings_it_back() {
    let exec = build_exec(50);
    let server = Server::start(
        exec,
        Arc::new(Registry::new()),
        ServeConfig {
            flight_max_bytes: 256,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let admin = server.admin_addr().expect("admin bound");

    // Record enough spans that the dump cannot fit in 256 bytes.
    sg_obs::span::set_enabled(true);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for tid in 0..10u64 {
        let _ = client.knn(&items_for(tid), 1, MetricName::Hamming, None);
    }
    sg_obs::span::set_enabled(false);

    let (status, body) = http_get(admin, "/debug/flight");
    assert!(status.contains("413"), "status: {status}");
    assert!(body.contains("?limit="), "hint missing: {body}");

    // limit=0 trims the dump to an empty (but valid) trace that fits.
    let (status, body) = http_get(admin, "/debug/flight?limit=0");
    assert!(status.contains("200"), "status: {status}");
    let doc = sg_obs::json::parse(&body).expect("bounded flight is JSON");
    assert_eq!(
        doc.get("traceEvents")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );

    drop(client);
    server.join();
}

#[test]
fn slow_log_over_cap_is_413_and_limit_brings_it_back() {
    let exec = build_exec(50);
    let server = Server::start(
        exec,
        Arc::new(Registry::new()),
        ServeConfig {
            slow_max_bytes: 128,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let admin = server.admin_addr().expect("admin bound");

    // Arm the slow-query log so every request lands in it, then record
    // enough requests that the dump cannot fit in 128 bytes.
    sg_obs::span::clear_slow();
    sg_obs::span::set_slow_threshold_ns(0);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for tid in 0..8u64 {
        let _ = client.knn(&items_for(tid), 1, MetricName::Hamming, None);
    }
    sg_obs::span::set_slow_threshold_ns(u64::MAX);

    let (status, body) = http_get(admin, "/debug/slow");
    assert!(status.contains("413"), "status: {status}");
    assert!(body.contains("?limit="), "hint missing: {body}");

    // limit=0 always fits: an empty (but valid) JSON array.
    let (status, body) = http_get(admin, "/debug/slow?limit=0");
    assert!(status.contains("200"), "status: {status}");
    let doc = sg_obs::json::parse(&body).expect("bounded slow log is JSON");
    assert_eq!(doc.as_arr().map(<[Json]>::len), Some(0));

    drop(client);
    server.join();
}

#[test]
fn profile_and_costs_endpoints_round_trip() {
    let exec = build_exec(100);
    let registry = Arc::new(Registry::new());
    exec.register_obs(&registry, "exec");
    let server = Server::start(exec, registry, ServeConfig::default()).expect("start server");
    let admin = server.admin_addr().expect("admin bound");

    // Traffic so the cost model has something to average.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for tid in 0..10u64 {
        let _ = client.knn(&items_for(tid), 2, MetricName::Hamming, None);
    }

    // /debug/profile with the sampler off: an empty folded dump, and a
    // JSON document that says so.
    let (status, body) = http_get(admin, "/debug/profile");
    assert!(status.contains("200"), "folded status: {status}");
    assert_eq!(body.trim(), "");
    let (status, body) = http_get(admin, "/debug/profile?format=json");
    assert!(status.contains("200"), "json status: {status}");
    let doc = sg_obs::json::parse(&body).expect("profile is JSON");
    assert!(matches!(doc.get("running"), Some(Json::Bool(false))));
    assert_eq!(
        doc.get("children")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    assert_eq!(doc.get("value").and_then(Json::as_u64), Some(0));

    // /debug/costs: the process-global model has per-kind EWMA rows,
    // including the knn traffic this test just sent.
    let (status, body) = http_get(admin, "/debug/costs");
    assert!(status.contains("200"), "costs status: {status}");
    let doc = sg_obs::json::parse(&body).expect("costs is JSON");
    let models = doc.get("models").and_then(Json::as_arr).unwrap();
    let knn = models
        .iter()
        .find(|m| {
            m.get("index").and_then(Json::as_str) == Some("exec")
                && m.get("kind").and_then(Json::as_str) == Some("knn")
        })
        .expect("exec/knn cost row");
    assert!(knn.get("count").and_then(Json::as_u64).unwrap() >= 10);
    assert!(knn.get("est_ns").and_then(Json::as_f64).unwrap() > 0.0);
    let ewma = knn.get("ewma").expect("ewma block");
    assert!(ewma.get("visits").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(ewma.get("bytes_decoded").and_then(Json::as_f64).unwrap() > 0.0);

    drop(client);
    server.join();
}
