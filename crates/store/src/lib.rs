//! # sg-store — mmap'd copy-on-write page store with snapshot reads
//!
//! The durable storage layer under the SG-tree. `crates/pager` serves
//! trees from a heap [`MemStore`](sg_pager::MemStore) rebuilt on every
//! open by replaying the *whole* write-ahead log; this crate replaces
//! that with a memory-mapped, copy-on-write page file in the style of
//! LMDB / jammdb (see SNIPPETS.md snippet 1):
//!
//! * **[`CowStore`]** implements [`sg_pager::PageStore`], so an
//!   [`SgTree`](../sg_tree/struct.SgTree.html) persists through it
//!   unchanged — node pages land in the file as they are written.
//! * **Snapshot-isolated reads.** [`CowStore::publish`] freezes the
//!   current page mapping; [`CowStore::snapshot`] returns a pinned,
//!   lock-free read-only [`Snapshot`] view. Queries run on views and
//!   never touch the writer's locks.
//! * **O(tail) restart.** [`CowStore::commit`] makes the current state
//!   durable with a dual-meta-page flip (one flushed CRC'd record is the
//!   whole commit) and records the WAL watermark it covers; on reopen,
//!   only WAL records past that watermark need replaying, so restart
//!   cost is proportional to the un-checkpointed tail, not history.
//!
//! The [`meta`], [`freelist`] and [`table`] modules are pure in-memory /
//! byte-level logic whose tests run under Miri; [`pagefile`] holds the
//! actual mmap segments (via the vendored `mmap` shim).

pub mod freelist;
pub mod meta;
pub mod pagefile;
pub mod table;

mod store;

pub use store::{CowStore, OpenReport, Snapshot, StoreStats};

// The store tests exercise real files and mmap segments, which Miri's
// isolation cannot run; `cargo miri test -p sg-store` covers the pure
// `meta`/`freelist`/`table` modules.
#[cfg(all(test, not(miri)))]
mod tests;
