//! [`CowStore`]: the copy-on-write page store over a memory-mapped file.
//!
//! ## Design (after jammdb / LMDB)
//!
//! The store presents **logical** pages through [`sg_pager::PageStore`];
//! a chunked COW [`PageTable`](crate::table::PageTable) maps them to
//! **physical** pages of an mmap'd, segment-grown file
//! ([`PageFile`](crate::pagefile::PageFile)). Three rules give snapshot
//! isolation and atomic durability:
//!
//! 1. **Copy-on-write.** The single writer never overwrites a physical
//!    page that a published snapshot or the durable commit can see: the
//!    first write to a logical page in each *window* (the span between
//!    two [`CowStore::publish`] calls) relocates it to a fresh physical
//!    page; the old one is parked in the epoch-gated
//!    [`Freelist`](crate::freelist::Freelist).
//! 2. **Epoch-pinned snapshots.** [`CowStore::publish`] freezes the
//!    current mapping (an O(chunks) table snapshot plus the segment
//!    list); [`CowStore::snapshot`] pins that epoch and returns a
//!    read-only [`PageStore`] view that translates and reads with **no
//!    locking** — concurrent writers and checkpoints never make it
//!    block, and its pages cannot be recycled until it drops.
//! 3. **Dual meta pages.** [`CowStore::commit`] serializes the table
//!    into COW pages, flushes data, then writes the *inactive* meta slot
//!    (physical page `tx_id % 2` flips each commit) with a CRC trailer —
//!    one flushed pointer-sized write is the whole commit. Recovery
//!    ([`CowStore::open`]) picks the valid slot with the highest
//!    transaction id, so a torn flip falls back to the previous commit
//!    and the write-ahead log replays only the tail past
//!    [`Meta::checkpoint_lsn`](crate::meta::Meta) — restart cost is
//!    O(tail), not O(history).

use crate::freelist::Freelist;
use crate::meta::{self, Meta, META_LEN, META_SLOTS, NONE};
use crate::pagefile::{read_page_in, PageFile, Segments};
use crate::table::PageTable;
use parking_lot::Mutex;
use sg_obs::StoreObs;
use sg_pager::{PageId, PageStore, SgError, SgResult};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// State frozen by the last [`CowStore::publish`]: what snapshots see.
struct Published {
    table: PageTable,
    epoch: u64,
    segs: Segments,
    live_pages: u64,
}

/// What the last durable commit wrote, kept to reuse unchanged chunk
/// pages at the next commit.
struct Committed {
    table: PageTable,
    chunk_pages: Vec<u64>,
    index_page: u64,
}

struct Inner {
    table: PageTable,
    logical_free: Vec<u64>,
    free: Freelist,
    next_phys: u64,
    /// Current write window; bumped by every publish and commit.
    epoch: u64,
    last_commit_epoch: u64,
    /// Logical pages relocated this window: safe to overwrite in place.
    private: std::collections::HashMap<u64, u64>,
    published: Published,
    committed: Option<Committed>,
    tx_id: u64,
    checkpoint_lsn: u64,
    /// Page writes since the last durable commit (gauge bookkeeping).
    dirty: i64,
}

/// A memory-mapped copy-on-write page store. See the module docs.
pub struct CowStore {
    file: PageFile,
    page_size: usize,
    inner: Mutex<Inner>,
    /// Pinned snapshot epochs → pin count. Lock order: `inner` before
    /// `pins` (snapshot drop takes only `pins`).
    pins: Mutex<BTreeMap<u64, u64>>,
    obs: OnceLock<Arc<StoreObs>>,
}

/// What [`CowStore::open`] found.
#[derive(Clone, Debug)]
pub struct OpenReport {
    /// True when the file did not previously exist (or was empty).
    pub created: bool,
    /// Transaction id of the recovered commit.
    pub tx_id: u64,
    /// WAL watermark of the recovered commit: replay starts here.
    pub checkpoint_lsn: u64,
    /// Logical pages in the recovered table (0 for a fresh store).
    pub n_logical: u64,
}

/// Point-in-time store statistics (see also [`StoreObs`]).
#[derive(Clone, Debug)]
pub struct StoreStats {
    pub pages_mapped: u64,
    pub pages_allocated: u64,
    pub pages_pending_free: u64,
    pub pages_reusable: u64,
    pub dirty_since_commit: i64,
    pub snapshot_pins: u64,
    pub tx_id: u64,
    pub checkpoint_lsn: u64,
    pub epoch: u64,
}

impl CowStore {
    /// Opens (creating if absent) the store at `path` and recovers the
    /// newest valid commit.
    pub fn open(
        path: impl AsRef<Path>,
        page_size: usize,
    ) -> io::Result<(Arc<CowStore>, OpenReport)> {
        assert!(page_size >= META_LEN, "page size too small for a meta slot");
        let file = PageFile::open(path, page_size)?;
        let chunk_entries = page_size / 8;

        let (m, created) = if file.mapped_pages() < META_SLOTS {
            // Fresh store: reserve the two meta slots and write commit 0.
            file.ensure_pages(META_SLOTS)?;
            let m = Meta {
                page_size: page_size as u32,
                tx_id: 0,
                table_index: NONE,
                n_logical: 0,
                next_phys: META_SLOTS,
                checkpoint_lsn: 0,
            };
            let mut page = vec![0u8; page_size];
            m.encode(&mut page);
            file.write_page(0, &page);
            file.write_page(1, &vec![0u8; page_size]);
            file.flush_page(0)?;
            (m, true)
        } else {
            let mut a = vec![0u8; page_size];
            let mut b = vec![0u8; page_size];
            file.read_page(0, &mut a);
            file.read_page(1, &mut b);
            let m = meta::pick(Meta::decode(&a), Meta::decode(&b)).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "no valid sg-store meta slot")
            })?;
            if m.page_size as usize != page_size {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("store page size {} != requested {page_size}", m.page_size),
                ));
            }
            (m, false)
        };

        file.ensure_pages(m.next_phys)?;

        // Rebuild the table from the committed index page.
        let (table, chunk_pages, index_page) = if m.table_index == NONE {
            (PageTable::new(chunk_entries), Vec::new(), NONE)
        } else {
            let mut idx = vec![0u8; page_size];
            file.read_page(m.table_index, &mut idx);
            let n_logical = u64::from_le_bytes(idx[0..8].try_into().unwrap());
            let n_chunks = u64::from_le_bytes(idx[8..16].try_into().unwrap()) as usize;
            if n_logical != m.n_logical || 16 + n_chunks * 8 > page_size {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "corrupt table index page",
                ));
            }
            let mut chunk_pages = Vec::with_capacity(n_chunks);
            let mut pages = Vec::with_capacity(n_chunks);
            for c in 0..n_chunks {
                let phys = u64::from_le_bytes(idx[16 + c * 8..24 + c * 8].try_into().unwrap());
                let mut page = vec![0u8; page_size];
                file.read_page(phys, &mut page);
                chunk_pages.push(phys);
                pages.push(page);
            }
            (
                PageTable::decode(chunk_entries, n_logical, &pages),
                chunk_pages,
                m.table_index,
            )
        };

        // Derive the free physical set: everything below the high-water
        // mark not referenced by the commit. (No pins exist at open, and
        // the *other* meta slot only ever falls back one commit — its
        // extra pages are exactly the ones this derivation frees.)
        let mut used = vec![false; m.next_phys as usize];
        used[0] = true;
        used[1] = true;
        if index_page != NONE {
            used[index_page as usize] = true;
        }
        for &p in &chunk_pages {
            used[p as usize] = true;
        }
        let mut logical_free = Vec::new();
        for (logical, phys) in table.iter() {
            if phys == NONE {
                logical_free.push(logical);
            } else {
                used[phys as usize] = true;
            }
        }
        let mut free = Freelist::new();
        for phys in (META_SLOTS..m.next_phys).rev() {
            if !used[phys as usize] {
                free.push_reusable(phys);
            }
        }

        let live_pages = table.len() - logical_free.len() as u64;
        let report = OpenReport {
            created,
            tx_id: m.tx_id,
            checkpoint_lsn: m.checkpoint_lsn,
            n_logical: table.len(),
        };
        let published = Published {
            table: table.snapshot(),
            epoch: 1,
            segs: file.segments(),
            live_pages,
        };
        let committed = if index_page == NONE {
            None
        } else {
            Some(Committed {
                table: table.snapshot(),
                chunk_pages,
                index_page,
            })
        };
        let store = CowStore {
            file,
            page_size,
            inner: Mutex::new(Inner {
                table,
                logical_free,
                free,
                next_phys: m.next_phys,
                epoch: 1,
                last_commit_epoch: 0,
                private: std::collections::HashMap::new(),
                published,
                committed,
                tx_id: m.tx_id,
                checkpoint_lsn: m.checkpoint_lsn,
                dirty: 0,
            }),
            pins: Mutex::new(BTreeMap::new()),
            obs: OnceLock::new(),
        };
        Ok((Arc::new(store), report))
    }

    /// Attaches shared store instruments; gauges are adjusted by delta so
    /// several stores can share one set.
    pub fn attach_obs(&self, obs: Arc<StoreObs>) {
        obs.pages_mapped.add(self.file.mapped_pages() as i64);
        // Pages dirtied before attachment (e.g. the WAL tail replayed at
        // open) must be seeded, or the first commit's subtraction drives
        // the gauge negative.
        obs.pages_dirty.add(self.inner.lock().dirty);
        let _ = self.obs.set(obs);
    }

    fn obs(&self) -> Option<&Arc<StoreObs>> {
        self.obs.get()
    }

    /// The attached instruments, if any (for callers that own gauges the
    /// store itself cannot compute, e.g. WAL checkpoint lag).
    pub fn obs_handle(&self) -> Option<&Arc<StoreObs>> {
        self.obs.get()
    }

    /// Smallest epoch any reader may still dereference: the oldest pinned
    /// snapshot, or failing that the currently-published epoch (which a
    /// future `snapshot()` call may pin at any moment).
    fn min_pin(&self, published_epoch: u64) -> u64 {
        let pins = self.pins.lock();
        pins.keys()
            .next()
            .copied()
            .unwrap_or(u64::MAX)
            .min(published_epoch)
    }

    fn alloc_phys(&self, inner: &mut Inner) -> SgResult<u64> {
        if let Some(p) = inner.free.alloc() {
            return Ok(p);
        }
        let p = inner.next_phys;
        let grown = self
            .file
            .ensure_pages(p + 1)
            .map_err(|e| SgError::io(format!("grow store to page {p}"), e))?;
        if grown > 0 {
            if let Some(obs) = self.obs() {
                obs.pages_mapped.add(grown as i64);
            }
        }
        inner.next_phys = p + 1;
        Ok(p)
    }

    fn park(&self, inner: &mut Inner, phys: u64) {
        let epoch = inner.epoch;
        inner.free.free_at(epoch, phys);
        if let Some(obs) = self.obs() {
            obs.pages_freed.inc();
        }
    }

    fn reclaim(&self, inner: &mut Inner) {
        let min_pin = self.min_pin(inner.published.epoch);
        let lce = inner.last_commit_epoch;
        inner.free.reclaim(min_pin, lce);
    }

    /// Freezes the current mapping as the published state new snapshots
    /// will see, and opens a new write window.
    pub fn publish(&self) {
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        let epoch = inner.epoch;
        let live_pages = inner.table.len() - inner.logical_free.len() as u64;
        inner.published = Published {
            table: inner.table.snapshot(),
            epoch,
            segs: self.file.segments(),
            live_pages,
        };
        inner.private.clear();
        self.reclaim(&mut inner);
    }

    /// Pins the published state and returns a lock-free read-only view.
    pub fn snapshot(self: &Arc<Self>) -> Snapshot {
        let inner = self.inner.lock();
        let epoch = inner.published.epoch;
        let snap = Snapshot {
            store: Arc::clone(self),
            table: inner.published.table.snapshot(),
            segs: Arc::clone(&inner.published.segs),
            live_pages: inner.published.live_pages,
            epoch,
            page_size: self.page_size,
            seg_pages: self.file.seg_pages(),
        };
        drop(inner);
        *self.pins.lock().entry(epoch).or_insert(0) += 1;
        if let Some(obs) = self.obs() {
            obs.snapshot_pins.add(1);
        }
        snap
    }

    fn unpin(&self, epoch: u64) {
        let mut pins = self.pins.lock();
        match pins.get_mut(&epoch) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                pins.remove(&epoch);
            }
            None => debug_assert!(false, "unpin of unpinned epoch {epoch}"),
        }
        drop(pins);
        if let Some(obs) = self.obs() {
            obs.snapshot_pins.add(-1);
        }
    }

    /// Durably commits the current mapping: serializes the table into COW
    /// pages, flushes data (when `sync`), and flips the inactive meta
    /// slot. `checkpoint_lsn` is the WAL watermark this state covers —
    /// recovery replays only records at or past it. With `sync: false`
    /// the flip is still crash-atomic against process death (the page
    /// cache survives `kill -9`) but not against power loss.
    ///
    /// The caller must ensure the logical pages form a consistent tree
    /// state (no writer mid-operation) — in the executor this holds
    /// because commits run while holding the shard lock.
    pub fn commit(&self, checkpoint_lsn: u64, sync: bool) -> io::Result<u64> {
        let t0 = Instant::now();
        let mut inner = self.inner.lock();

        // 1. Serialize the table: unchanged chunks keep their committed
        //    page, changed ones go to fresh COW pages.
        let n_chunks = inner.table.chunks().len();
        let mut chunk_pages = Vec::with_capacity(n_chunks);
        let mut superseded = Vec::new();
        for c in 0..n_chunks {
            let reuse = inner.committed.as_ref().and_then(|com| {
                if inner.table.chunk_shared_with(c, &com.table) {
                    Some(com.chunk_pages[c])
                } else {
                    None
                }
            });
            if let Some(phys) = reuse {
                chunk_pages.push(phys);
                continue;
            }
            let phys = self
                .alloc_phys(&mut inner)
                .map_err(|e| io::Error::other(format!("commit: {e}")))?;
            let mut page = vec![0u8; self.page_size];
            inner.table.encode_chunk(c, &mut page);
            self.file.write_page(phys, &page);
            chunk_pages.push(phys);
            if let Some(com) = inner.committed.as_ref() {
                if let Some(&old) = com.chunk_pages.get(c) {
                    superseded.push(old);
                }
            }
        }

        // 2. The index page listing the chunks.
        if 16 + n_chunks * 8 > self.page_size {
            return Err(io::Error::other(format!(
                "store capacity exceeded: {n_chunks} table chunks do not fit one index page"
            )));
        }
        let index_page = self
            .alloc_phys(&mut inner)
            .map_err(|e| io::Error::other(format!("commit: {e}")))?;
        let mut idx = vec![0u8; self.page_size];
        idx[0..8].copy_from_slice(&inner.table.len().to_le_bytes());
        idx[8..16].copy_from_slice(&(n_chunks as u64).to_le_bytes());
        for (c, phys) in chunk_pages.iter().enumerate() {
            idx[16 + c * 8..24 + c * 8].copy_from_slice(&phys.to_le_bytes());
        }
        self.file.write_page(index_page, &idx);

        // 3. Data barrier before the pointer flip.
        if sync {
            self.file.flush_all()?;
        }

        // 4. The atomic commit: one meta record into the inactive slot.
        let m = Meta {
            page_size: self.page_size as u32,
            tx_id: inner.tx_id + 1,
            table_index: index_page,
            n_logical: inner.table.len(),
            next_phys: inner.next_phys,
            checkpoint_lsn,
        };
        let mut page = vec![0u8; self.page_size];
        m.encode(&mut page);
        self.file.write_page(m.slot(), &page);
        if sync {
            self.file.flush_page(m.slot())?;
        }

        // 5. Retire the superseded table pages and roll the bookkeeping
        //    forward. The commit closes the current window (epoch bump):
        //    anything freed from here on postdates this commit.
        for old in superseded {
            self.park(&mut inner, old);
        }
        if let Some(com) = inner.committed.take() {
            let old_index = com.index_page;
            self.park(&mut inner, old_index);
        }
        inner.committed = Some(Committed {
            table: inner.table.snapshot(),
            chunk_pages,
            index_page,
        });
        inner.tx_id = m.tx_id;
        inner.checkpoint_lsn = checkpoint_lsn;
        inner.last_commit_epoch = inner.epoch;
        inner.epoch += 1;
        // The commit closes the write window: every page is now (or may
        // be, after the flip) referenced by durable state, so the next
        // write to any logical page must relocate it again.
        inner.private.clear();
        if let Some(obs) = self.obs() {
            obs.meta_flips.inc();
            obs.pages_dirty.add(-inner.dirty);
            obs.commit_ns.record(t0.elapsed().as_nanos() as u64);
        }
        inner.dirty = 0;
        self.reclaim(&mut inner);
        Ok(m.tx_id)
    }

    /// The WAL watermark of the last durable commit.
    pub fn checkpoint_lsn(&self) -> u64 {
        self.inner.lock().checkpoint_lsn
    }

    /// The transaction id of the last durable commit.
    pub fn tx_id(&self) -> u64 {
        self.inner.lock().tx_id
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            pages_mapped: self.file.mapped_pages(),
            pages_allocated: inner.table.len() - inner.logical_free.len() as u64,
            pages_pending_free: inner.free.pending_len() as u64,
            pages_reusable: inner.free.reusable_len() as u64,
            dirty_since_commit: inner.dirty,
            snapshot_pins: self.pins.lock().values().sum(),
            tx_id: inner.tx_id,
            checkpoint_lsn: inner.checkpoint_lsn,
            epoch: inner.epoch,
        }
    }
}

impl Drop for CowStore {
    fn drop(&mut self) {
        // Return this store's contribution to the shared gauges.
        if let Some(obs) = self.obs.get() {
            obs.pages_mapped.add(-(self.file.mapped_pages() as i64));
            obs.pages_dirty.add(-self.inner.lock().dirty);
        }
    }
}

impl PageStore for CowStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self) -> PageId {
        self.try_allocate()
            .unwrap_or_else(|e| panic!("allocate page: {e}"))
    }

    fn try_allocate(&self) -> SgResult<PageId> {
        let mut inner = self.inner.lock();
        let phys = self.alloc_phys(&mut inner)?;
        self.file.write_page(phys, &vec![0u8; self.page_size]);
        let logical = match inner.logical_free.pop() {
            Some(l) => {
                inner.table.set(l, phys);
                l
            }
            None => inner.table.push(phys),
        };
        inner.private.insert(logical, phys);
        inner.dirty += 1;
        if let Some(obs) = self.obs() {
            obs.pages_dirty.add(1);
        }
        Ok(logical)
    }

    fn free(&self, id: PageId) {
        self.try_free(id)
            .unwrap_or_else(|e| panic!("free page {id}: {e}"))
    }

    fn try_free(&self, id: PageId) -> SgResult<()> {
        let mut inner = self.inner.lock();
        let phys = inner.table.get(id);
        assert_ne!(phys, NONE, "double free of page {id}");
        inner.table.set(id, NONE);
        inner.logical_free.push(id);
        inner.private.remove(&id);
        self.park(&mut inner, phys);
        Ok(())
    }

    fn read(&self, id: PageId, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size);
        let inner = self.inner.lock();
        let phys = inner.table.get(id);
        assert_ne!(phys, NONE, "read of freed page {id}");
        self.file.read_page(phys, buf);
    }

    fn write(&self, id: PageId, buf: &[u8]) {
        self.try_write(id, buf)
            .unwrap_or_else(|e| panic!("write page {id}: {e}"))
    }

    fn try_write(&self, id: PageId, buf: &[u8]) -> SgResult<()> {
        assert_eq!(buf.len(), self.page_size);
        let mut inner = self.inner.lock();
        if let Some(&phys) = inner.private.get(&id) {
            // Already relocated this window: in-place is invisible to
            // every published snapshot and to the durable commit.
            self.file.write_page(phys, buf);
            return Ok(());
        }
        let old = inner.table.get(id);
        assert_ne!(old, NONE, "write of freed page {id}");
        let phys = self.alloc_phys(&mut inner)?;
        self.file.write_page(phys, buf);
        inner.table.set(id, phys);
        inner.private.insert(id, phys);
        self.park(&mut inner, old);
        inner.dirty += 1;
        if let Some(obs) = self.obs() {
            obs.pages_dirty.add(1);
        }
        Ok(())
    }

    fn allocated_pages(&self) -> u64 {
        let inner = self.inner.lock();
        inner.table.len() - inner.logical_free.len() as u64
    }

    fn sync(&self) -> SgResult<()> {
        self.file
            .flush_all()
            .map_err(|e| SgError::io("sync store", e))
    }
}

/// A pinned, immutable, **lock-free** view of one published epoch.
///
/// Implements [`PageStore`] read-only: translation goes through the
/// frozen table snapshot and reads go straight to the captured mmap
/// segments — no store lock, no shard lock. Queries running on a view
/// proceed untouched while writers mutate and checkpoints commit.
/// Dropping the view unpins its epoch, allowing page reclamation.
pub struct Snapshot {
    store: Arc<CowStore>,
    table: PageTable,
    segs: Segments,
    live_pages: u64,
    epoch: u64,
    page_size: usize,
    seg_pages: u64,
}

impl Snapshot {
    /// The pinned publish epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.store.unpin(self.epoch);
    }
}

impl PageStore for Snapshot {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self) -> PageId {
        panic!("snapshot store is read-only")
    }

    fn try_allocate(&self) -> SgResult<PageId> {
        Err(SgError::Unsupported("snapshot store is read-only"))
    }

    fn free(&self, _id: PageId) {
        panic!("snapshot store is read-only")
    }

    fn try_free(&self, _id: PageId) -> SgResult<()> {
        Err(SgError::Unsupported("snapshot store is read-only"))
    }

    fn read(&self, id: PageId, buf: &mut [u8]) {
        let phys = self.table.get(id);
        assert_ne!(phys, NONE, "read of freed page {id}");
        read_page_in(&self.segs, self.seg_pages, self.page_size, phys, buf);
    }

    fn write(&self, _id: PageId, _buf: &[u8]) {
        panic!("snapshot store is read-only")
    }

    fn try_write(&self, _id: PageId, _buf: &[u8]) -> SgResult<()> {
        Err(SgError::Unsupported("snapshot store is read-only"))
    }

    fn allocated_pages(&self) -> u64 {
        self.live_pages
    }
}
