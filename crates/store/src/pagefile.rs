//! The memory-mapped page file: physical pages in fixed-size segments.
//!
//! The file is mapped in equal segments (≈4 MiB, rounded so every
//! segment is both page- and mmap-alignment-sized). Growth appends a new
//! segment and **never remaps existing ones**, so raw pointers held by
//! concurrent snapshot readers stay valid for the life of the store; a
//! snapshot captures the segment list (`Arc<Vec<Arc<Region>>>`) current
//! at publish time and reads through it without any locking.
//!
//! # Safety
//!
//! Page reads/writes go through [`mmap::Region`]'s raw copy helpers. The
//! owning [`crate::CowStore`] upholds the required discipline: a physical
//! page is only ever written while it is private to the single writer
//! (freshly allocated or copy-on-written this window), never once a
//! published snapshot or the durable meta can reference it.

use mmap::{Region, MAP_ALIGN};
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Shared, append-only list of mapped segments.
pub type Segments = Arc<Vec<Arc<Region>>>;

/// A page file mapped in fixed-size segments.
pub struct PageFile {
    file: File,
    page_size: usize,
    seg_pages: u64,
    seg_bytes: u64,
    segs: RwLock<Segments>,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Segment size for a page size: a common multiple of the page size and
/// [`MAP_ALIGN`], scaled up to at least ~4 MiB so growth is infrequent.
fn segment_bytes(page_size: u64) -> u64 {
    const TARGET: u64 = 4 << 20;
    let unit = page_size / gcd(page_size, MAP_ALIGN) * MAP_ALIGN;
    let factor = TARGET.div_ceil(unit);
    unit * factor.max(1)
}

impl PageFile {
    /// Opens (creating if absent) the page file at `path` and maps every
    /// existing segment.
    pub fn open(path: impl AsRef<Path>, page_size: usize) -> io::Result<PageFile> {
        assert!(page_size > 0);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let seg_bytes = segment_bytes(page_size as u64);
        let seg_pages = seg_bytes / page_size as u64;
        let len = file.metadata()?.len();
        let n_segs = len / seg_bytes; // partial trailing segments are regrown on demand
        let mut segs = Vec::with_capacity(n_segs as usize);
        for k in 0..n_segs {
            segs.push(Arc::new(Region::map(
                &file,
                k * seg_bytes,
                seg_bytes as usize,
            )?));
        }
        Ok(PageFile {
            file,
            page_size,
            seg_pages,
            seg_bytes,
            segs: RwLock::new(Arc::new(segs)),
        })
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages per mapped segment (the translation stride for
    /// [`read_page_in`]).
    pub fn seg_pages(&self) -> u64 {
        self.seg_pages
    }

    /// Physical pages currently mapped (file capacity).
    pub fn mapped_pages(&self) -> u64 {
        self.segs.read().len() as u64 * self.seg_pages
    }

    /// The current segment list; snapshots capture this at publish time.
    pub fn segments(&self) -> Segments {
        Arc::clone(&self.segs.read())
    }

    /// Grows the file (and mapping) until at least `pages` physical pages
    /// exist. Existing segments are never remapped.
    pub fn ensure_pages(&self, pages: u64) -> io::Result<u64> {
        let mut grown = 0;
        let mut segs = self.segs.write();
        while (segs.len() as u64) * self.seg_pages < pages {
            let k = segs.len() as u64;
            self.file.set_len((k + 1) * self.seg_bytes)?;
            let region = Arc::new(Region::map(
                &self.file,
                k * self.seg_bytes,
                self.seg_bytes as usize,
            )?);
            let mut next = Vec::with_capacity(segs.len() + 1);
            next.extend(segs.iter().cloned());
            next.push(region);
            *segs = Arc::new(next);
            grown += self.seg_pages;
        }
        Ok(grown)
    }

    /// Reads physical page `phys` into `buf`.
    pub fn read_page(&self, phys: u64, buf: &mut [u8]) {
        let segs = self.segs.read();
        read_page_in(&segs, self.seg_pages, self.page_size, phys, buf);
    }

    /// Writes `data` as physical page `phys` (see the module safety note).
    pub fn write_page(&self, phys: u64, data: &[u8]) {
        assert_eq!(data.len(), self.page_size);
        let segs = self.segs.read();
        let (seg, off) = locate(self.seg_pages, self.page_size, phys);
        let region = segs
            .get(seg)
            .unwrap_or_else(|| panic!("write past mapping: page {phys}"));
        unsafe { region.write_at(off, data) }
    }

    /// Flushes every mapped segment to stable storage (`msync`).
    pub fn flush_all(&self) -> io::Result<()> {
        let segs = self.segments();
        for region in segs.iter() {
            region.flush()?;
        }
        Ok(())
    }

    /// Flushes just the segment range holding page `phys` — the single
    /// durable "pointer write" of a meta-slot flip.
    pub fn flush_page(&self, phys: u64) -> io::Result<()> {
        let segs = self.segs.read();
        let (seg, off) = locate(self.seg_pages, self.page_size, phys);
        let region = segs
            .get(seg)
            .unwrap_or_else(|| panic!("flush past mapping: page {phys}"));
        region.flush_range(off, self.page_size)
    }
}

#[inline]
fn locate(seg_pages: u64, page_size: usize, phys: u64) -> (usize, usize) {
    (
        (phys / seg_pages) as usize,
        (phys % seg_pages) as usize * page_size,
    )
}

/// Reads page `phys` through a captured segment list — the lock-free
/// snapshot read path.
pub fn read_page_in(
    segs: &[Arc<Region>],
    seg_pages: u64,
    page_size: usize,
    phys: u64,
    buf: &mut [u8],
) {
    assert_eq!(buf.len(), page_size);
    let (seg, off) = locate(seg_pages, page_size, phys);
    let region = segs
        .get(seg)
        .unwrap_or_else(|| panic!("read past mapping: page {phys}"));
    unsafe { region.read_into(off, buf) }
}

#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "sg-store-pf-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn segment_bytes_is_aligned_for_odd_page_sizes() {
        for ps in [128u64, 1024, 4096, 8192, 1000, 1536] {
            let sb = segment_bytes(ps);
            assert_eq!(sb % ps, 0, "page size {ps}");
            assert_eq!(sb % MAP_ALIGN, 0, "page size {ps}");
            assert!(sb >= 4 << 20);
        }
    }

    #[test]
    fn write_read_roundtrip_across_growth() {
        let path = temp("roundtrip");
        let pf = PageFile::open(&path, 4096).unwrap();
        assert_eq!(pf.mapped_pages(), 0);
        pf.ensure_pages(1).unwrap();
        let first = pf.mapped_pages();
        assert!(first >= 1);

        let page = vec![0x5Au8; 4096];
        pf.write_page(0, &page);

        // Capture the segment list, then grow: the captured list must keep
        // serving old pages (growth never remaps).
        let segs = pf.segments();
        pf.ensure_pages(first + 1).unwrap();
        assert!(pf.mapped_pages() > first);

        let mut out = vec![0u8; 4096];
        read_page_in(&segs, first, 4096, 0, &mut out);
        assert_eq!(out, page);
        pf.write_page(first, &page); // page in the new segment
        let mut out2 = vec![0u8; 4096];
        pf.read_page(first, &mut out2);
        assert_eq!(out2, page);

        drop(pf);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_maps_existing_segments() {
        let path = temp("reopen");
        {
            let pf = PageFile::open(&path, 4096).unwrap();
            pf.ensure_pages(1).unwrap();
            pf.write_page(3, &[9u8; 4096]);
            pf.flush_all().unwrap();
        }
        {
            let pf = PageFile::open(&path, 4096).unwrap();
            assert!(pf.mapped_pages() >= 4);
            let mut out = vec![0u8; 4096];
            pf.read_page(3, &mut out);
            assert_eq!(out, [9u8; 4096]);
        }
        std::fs::remove_file(&path).ok();
    }
}
