//! Chunked copy-on-write page table: logical page id → physical page.
//!
//! The table is split into fixed-size chunks, each held behind an `Arc`.
//! Taking a snapshot clones only the spine (`Vec<Arc<_>>`), so it is
//! O(chunks) and never copies entries; a later write to a shared chunk
//! copies just that chunk (`Arc::make_mut`). Snapshots therefore read a
//! frozen mapping with no locking at all.
//!
//! Each chunk serializes to exactly one store page at commit time
//! (`chunk_entries = page_size / 8`); a chunk whose `Arc` is unchanged
//! since the last commit reuses its already-written page.
//!
//! Pure in-memory logic (no I/O) so its unit tests run under Miri.

use crate::meta::NONE;
use std::sync::Arc;

/// The logical → physical page mapping.
#[derive(Clone, Debug)]
pub struct PageTable {
    chunk_entries: usize,
    len: u64,
    chunks: Vec<Arc<Vec<u64>>>,
}

impl PageTable {
    /// An empty table whose chunks hold `chunk_entries` mappings each.
    pub fn new(chunk_entries: usize) -> PageTable {
        assert!(chunk_entries > 0);
        PageTable {
            chunk_entries,
            len: 0,
            chunks: Vec::new(),
        }
    }

    /// Number of logical pages (including freed ones, which map to
    /// [`NONE`]).
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries per chunk (= one store page worth).
    pub fn chunk_entries(&self) -> usize {
        self.chunk_entries
    }

    /// The chunk spine, for commit-time serialization.
    pub fn chunks(&self) -> &[Arc<Vec<u64>>] {
        &self.chunks
    }

    /// Physical page for `logical`, or [`NONE`] for a freed entry.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= len()`.
    pub fn get(&self, logical: u64) -> u64 {
        assert!(logical < self.len, "logical page {logical} out of range");
        let c = (logical as usize) / self.chunk_entries;
        self.chunks[c][(logical as usize) % self.chunk_entries]
    }

    /// Remaps `logical` to `phys`, copying its chunk if shared.
    pub fn set(&mut self, logical: u64, phys: u64) {
        assert!(logical < self.len, "logical page {logical} out of range");
        let c = (logical as usize) / self.chunk_entries;
        Arc::make_mut(&mut self.chunks[c])[(logical as usize) % self.chunk_entries] = phys;
    }

    /// Appends a new logical page mapped to `phys`, returning its id.
    pub fn push(&mut self, phys: u64) -> u64 {
        let logical = self.len;
        let slot = (logical as usize) % self.chunk_entries;
        if slot == 0 {
            self.chunks.push(Arc::new(vec![NONE; self.chunk_entries]));
        }
        let c = (logical as usize) / self.chunk_entries;
        Arc::make_mut(&mut self.chunks[c])[slot] = phys;
        self.len += 1;
        logical
    }

    /// An immutable O(chunks) snapshot of the current mapping.
    pub fn snapshot(&self) -> PageTable {
        self.clone()
    }

    /// Iterates `(logical, phys)` over all entries, including [`NONE`]s.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        (0..self.len).map(move |l| (l, self.get(l)))
    }

    /// Serializes chunk `c` into `page` (little-endian u64s; the tail of
    /// a partially-filled final chunk encodes [`NONE`]).
    pub fn encode_chunk(&self, c: usize, page: &mut [u8]) {
        let chunk = &self.chunks[c];
        assert!(page.len() >= chunk.len() * 8, "page too small for chunk");
        for (i, &phys) in chunk.iter().enumerate() {
            page[i * 8..i * 8 + 8].copy_from_slice(&phys.to_le_bytes());
        }
    }

    /// Rebuilds a table from decoded chunk pages. `pages[c]` holds the
    /// serialized bytes of chunk `c`; `len` is the logical page count.
    pub fn decode(chunk_entries: usize, len: u64, pages: &[Vec<u8>]) -> PageTable {
        let needed = (len as usize).div_ceil(chunk_entries);
        assert_eq!(pages.len(), needed, "chunk page count mismatch");
        let mut chunks = Vec::with_capacity(needed);
        for page in pages {
            assert!(page.len() >= chunk_entries * 8, "chunk page too small");
            let mut chunk = Vec::with_capacity(chunk_entries);
            for i in 0..chunk_entries {
                chunk.push(u64::from_le_bytes(
                    page[i * 8..i * 8 + 8].try_into().unwrap(),
                ));
            }
            chunks.push(Arc::new(chunk));
        }
        PageTable {
            chunk_entries,
            len,
            chunks,
        }
    }

    /// True when chunk `c` is the very same allocation as in `other` —
    /// i.e. untouched since `other` was snapshotted, so a committed page
    /// holding it can be reused verbatim.
    pub fn chunk_shared_with(&self, c: usize, other: &PageTable) -> bool {
        match other.chunks.get(c) {
            Some(o) => Arc::ptr_eq(&self.chunks[c], o),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut t = PageTable::new(4);
        for i in 0..10u64 {
            assert_eq!(t.push(100 + i), i);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.get(7), 107);
        t.set(7, 777);
        assert_eq!(t.get(7), 777);
        assert_eq!(t.chunks().len(), 3);
    }

    #[test]
    fn snapshot_is_frozen_under_later_writes() {
        let mut t = PageTable::new(4);
        for i in 0..6u64 {
            t.push(i * 10);
        }
        let snap = t.snapshot();
        t.set(1, 999);
        t.push(60);
        assert_eq!(snap.get(1), 10, "snapshot unaffected by set");
        assert_eq!(snap.len(), 6, "snapshot unaffected by push");
        assert_eq!(t.get(1), 999);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn chunk_sharing_detects_cow() {
        let mut t = PageTable::new(4);
        for i in 0..8u64 {
            t.push(i);
        }
        let snap = t.snapshot();
        assert!(t.chunk_shared_with(0, &snap));
        assert!(t.chunk_shared_with(1, &snap));
        t.set(5, 500); // dirties chunk 1 only
        assert!(t.chunk_shared_with(0, &snap));
        assert!(!t.chunk_shared_with(1, &snap));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = PageTable::new(4);
        for i in 0..6u64 {
            t.push(i * 7 + 1);
        }
        t.set(2, NONE); // a freed logical page persists as NONE
        let pages: Vec<Vec<u8>> = (0..t.chunks().len())
            .map(|c| {
                let mut page = vec![0u8; 32];
                t.encode_chunk(c, &mut page);
                page
            })
            .collect();
        let back = PageTable::decode(4, t.len(), &pages);
        assert_eq!(back.len(), t.len());
        for l in 0..t.len() {
            assert_eq!(back.get(l), t.get(l), "entry {l}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let t = PageTable::new(4);
        t.get(0);
    }
}
