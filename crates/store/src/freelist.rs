//! Physical-page freelist with transaction/epoch-gated reclamation.
//!
//! When a page is copy-on-written or dropped it is not immediately
//! reusable: a published snapshot may still be reading it, and — until
//! the *next* durable commit — the last committed meta's page table may
//! still reference it (overwriting it would corrupt the state crash
//! recovery falls back to). Each freed page is therefore tagged with the
//! epoch at which it died and parked in a pending queue; it graduates to
//! the reusable pool only once
//!
//! 1. every pinned snapshot is newer than the free (`epoch < min_pin`), and
//! 2. a commit at or after the free has made a table *without* the page
//!    durable (`epoch <= last_commit_epoch`).
//!
//! Rule 2 is conservative for pages that were born *and* freed between
//! two commits (the durable table never saw them), but the background
//! checkpointer commits regularly, so the extra parking time is bounded
//! by one checkpoint interval.
//!
//! Pure in-memory logic (no I/O) so its unit tests run under Miri.

use std::collections::VecDeque;

/// Epoch-gated freelist over physical page ids.
#[derive(Debug, Default)]
pub struct Freelist {
    /// Pages safe to hand out right now.
    reusable: Vec<u64>,
    /// Pages awaiting the gates above, in nondecreasing epoch order
    /// (frees always happen at the current epoch, which only grows).
    pending: VecDeque<(u64, u64)>, // (freed_epoch, phys)
}

impl Freelist {
    pub fn new() -> Freelist {
        Freelist::default()
    }

    /// Adds a page known to be unreferenced by any durable or pinned
    /// state (used when deriving the free set on open).
    pub fn push_reusable(&mut self, phys: u64) {
        self.reusable.push(phys);
    }

    /// Parks `phys`, freed during epoch `epoch`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `epoch` regresses below the newest pending entry.
    pub fn free_at(&mut self, epoch: u64, phys: u64) {
        debug_assert!(
            self.pending.back().map_or(true, |&(e, _)| e <= epoch),
            "freelist epochs must be nondecreasing"
        );
        self.pending.push_back((epoch, phys));
    }

    /// Hands out a reusable page, if any.
    pub fn alloc(&mut self) -> Option<u64> {
        self.reusable.pop()
    }

    /// Graduates every pending page whose epoch has cleared both gates.
    /// `min_pin` is the smallest pinned snapshot epoch (`u64::MAX` when
    /// nothing is pinned); `last_commit_epoch` is the epoch of the most
    /// recent durable commit.
    pub fn reclaim(&mut self, min_pin: u64, last_commit_epoch: u64) -> usize {
        let mut n = 0;
        while let Some(&(epoch, phys)) = self.pending.front() {
            if epoch < min_pin && epoch <= last_commit_epoch {
                self.reusable.push(phys);
                self.pending.pop_front();
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Pages parked awaiting reclamation.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Pages immediately reusable.
    pub fn reusable_len(&self) -> usize {
        self.reusable.len()
    }

    /// All parked pages, newest-first — used at commit time to persist the
    /// complete free set (after a restart no pins exist, so every pending
    /// page derived as unreferenced becomes reusable).
    pub fn iter_pending(&self) -> impl Iterator<Item = u64> + '_ {
        self.pending.iter().map(|&(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_waits_for_commit_gate() {
        let mut fl = Freelist::new();
        fl.free_at(3, 100);
        // No commit at/after epoch 3 yet: stays parked even with no pins.
        assert_eq!(fl.reclaim(u64::MAX, 2), 0);
        assert_eq!(fl.alloc(), None);
        // Commit at epoch 3 clears it.
        assert_eq!(fl.reclaim(u64::MAX, 3), 1);
        assert_eq!(fl.alloc(), Some(100));
    }

    #[test]
    fn pending_waits_for_pinned_snapshots() {
        let mut fl = Freelist::new();
        fl.free_at(5, 200);
        // A snapshot pinned at epoch 5 may reference the page.
        assert_eq!(fl.reclaim(5, 10), 0);
        // Pin released (min_pin now above the free epoch): reusable.
        assert_eq!(fl.reclaim(6, 10), 1);
        assert_eq!(fl.alloc(), Some(200));
    }

    #[test]
    fn reclaim_stops_at_first_blocked_entry() {
        let mut fl = Freelist::new();
        fl.free_at(1, 10);
        fl.free_at(2, 20);
        fl.free_at(4, 40);
        assert_eq!(fl.reclaim(u64::MAX, 2), 2);
        assert_eq!(fl.pending_len(), 1);
        assert_eq!(fl.reusable_len(), 2);
        assert_eq!(fl.reclaim(u64::MAX, 4), 1);
        assert_eq!(fl.pending_len(), 0);
    }

    #[test]
    fn alloc_prefers_recycled_pages() {
        let mut fl = Freelist::new();
        assert_eq!(fl.alloc(), None);
        fl.push_reusable(7);
        fl.push_reusable(8);
        assert_eq!(fl.alloc(), Some(8));
        assert_eq!(fl.alloc(), Some(7));
        assert_eq!(fl.alloc(), None);
    }

    #[test]
    fn iter_pending_lists_all_parked_pages() {
        let mut fl = Freelist::new();
        fl.free_at(1, 11);
        fl.free_at(2, 22);
        let got: Vec<u64> = fl.iter_pending().collect();
        assert_eq!(got, vec![11, 22]);
    }
}
