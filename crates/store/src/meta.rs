//! Dual meta pages: the commit pointer of the store.
//!
//! Physical pages 0 and 1 each hold one fixed-layout, CRC-trailed meta
//! record. A commit writes the *inactive* slot (`(tx_id + 1) % 2`) and
//! makes it durable with a single flush — that write IS the atomic
//! commit. Recovery decodes both slots and picks the valid one with the
//! highest transaction id; a torn slot fails its CRC and recovery falls
//! back to the previous commit, whose slot the torn write never touched.
//!
//! This module is pure byte-level logic (no I/O, no syscalls) so its unit
//! tests run under Miri.

use sg_pager::crc32;

/// Magic bytes opening every valid meta slot.
pub const META_MAGIC: [u8; 8] = *b"SGSTORE1";

/// On-disk format version.
pub const META_VERSION: u32 = 1;

/// Number of physical pages reserved for meta slots (pages 0 and 1).
pub const META_SLOTS: u64 = 2;

/// Encoded size of a meta record, including the CRC trailer.
pub const META_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 4;

/// Sentinel for "no page" (empty table, never-committed index).
pub const NONE: u64 = u64::MAX;

/// One durable commit point of the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Meta {
    /// Page size the file was created with; a mismatch on open is an error.
    pub page_size: u32,
    /// Monotonic commit counter. Slot parity = `tx_id % 2`.
    pub tx_id: u64,
    /// Physical page holding the page-table index, or [`NONE`] before the
    /// first commit of a non-empty table.
    pub table_index: u64,
    /// Number of logical pages (the page table's length).
    pub n_logical: u64,
    /// Physical high-water mark: all physical pages live in `[0, next_phys)`.
    pub next_phys: u64,
    /// WAL watermark: every operation with LSN `< checkpoint_lsn` is folded
    /// into the pages this meta references; replay starts here.
    pub checkpoint_lsn: u64,
}

impl Meta {
    /// The slot (0 or 1) this meta occupies, by parity.
    pub fn slot(&self) -> u64 {
        self.tx_id % META_SLOTS
    }

    /// Encodes the record into the head of `page` (rest left untouched).
    ///
    /// # Panics
    ///
    /// Panics if `page` is shorter than [`META_LEN`].
    pub fn encode(&self, page: &mut [u8]) {
        assert!(page.len() >= META_LEN, "meta page too small");
        let mut off = 0usize;
        let mut put = |bytes: &[u8]| {
            page[off..off + bytes.len()].copy_from_slice(bytes);
            off += bytes.len();
        };
        put(&META_MAGIC);
        put(&META_VERSION.to_le_bytes());
        put(&self.page_size.to_le_bytes());
        put(&self.tx_id.to_le_bytes());
        put(&self.table_index.to_le_bytes());
        put(&self.n_logical.to_le_bytes());
        put(&self.next_phys.to_le_bytes());
        put(&self.checkpoint_lsn.to_le_bytes());
        let crc = crc32(&page[..META_LEN - 4]);
        page[META_LEN - 4..META_LEN].copy_from_slice(&crc.to_le_bytes());
    }

    /// Decodes a meta record, returning `None` for anything invalid: wrong
    /// magic, unknown version, or a CRC mismatch (the torn-write case).
    pub fn decode(page: &[u8]) -> Option<Meta> {
        if page.len() < META_LEN || page[..8] != META_MAGIC {
            return None;
        }
        let stored = u32::from_le_bytes(page[META_LEN - 4..META_LEN].try_into().ok()?);
        if crc32(&page[..META_LEN - 4]) != stored {
            return None;
        }
        let u32_at = |off: usize| u32::from_le_bytes(page[off..off + 4].try_into().unwrap());
        let u64_at = |off: usize| u64::from_le_bytes(page[off..off + 8].try_into().unwrap());
        if u32_at(8) != META_VERSION {
            return None;
        }
        Some(Meta {
            page_size: u32_at(12),
            tx_id: u64_at(16),
            table_index: u64_at(24),
            n_logical: u64_at(32),
            next_phys: u64_at(40),
            checkpoint_lsn: u64_at(48),
        })
    }
}

/// Picks the recovery point: the valid slot with the highest `tx_id`.
/// `None` only when both slots are invalid (not an sg-store file).
pub fn pick(a: Option<Meta>, b: Option<Meta>) -> Option<Meta> {
    match (a, b) {
        (Some(a), Some(b)) => Some(if a.tx_id >= b.tx_id { a } else { b }),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tx: u64) -> Meta {
        Meta {
            page_size: 4096,
            tx_id: tx,
            table_index: 7,
            n_logical: 42,
            next_phys: 99,
            checkpoint_lsn: 1234,
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample(5);
        let mut page = vec![0u8; 4096];
        m.encode(&mut page);
        assert_eq!(Meta::decode(&page), Some(m));
    }

    #[test]
    fn torn_write_fails_crc_and_falls_back() {
        let old = sample(4);
        let new = sample(5);
        let mut slot_a = vec![0u8; 128];
        let mut slot_b = vec![0u8; 128];
        old.encode(&mut slot_a);
        new.encode(&mut slot_b);
        // Tear the newer slot mid-record: a crash during the flip.
        slot_b[20] ^= 0xFF;
        let picked = pick(Meta::decode(&slot_a), Meta::decode(&slot_b)).unwrap();
        assert_eq!(picked, old, "recovery falls back to the previous commit");
    }

    #[test]
    fn pick_prefers_highest_tx() {
        let a = sample(8);
        let b = sample(9);
        assert_eq!(pick(Some(a.clone()), Some(b.clone())).unwrap().tx_id, 9);
        assert_eq!(pick(Some(b), Some(a)).unwrap().tx_id, 9);
    }

    #[test]
    fn zeroed_and_garbage_slots_are_invalid() {
        assert_eq!(Meta::decode(&[0u8; 4096]), None);
        assert_eq!(Meta::decode(&[0xA5u8; 4096]), None);
        assert_eq!(Meta::decode(b"short"), None);
        assert_eq!(pick(None, None), None);
    }

    #[test]
    fn slot_alternates_with_parity() {
        assert_eq!(sample(0).slot(), 0);
        assert_eq!(sample(1).slot(), 1);
        assert_eq!(sample(2).slot(), 0);
    }
}
