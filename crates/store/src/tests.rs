//! CowStore integration tests: durability, meta-flip atomicity, COW
//! snapshot isolation (including a randomized writer/checkpoint/reader
//! interleaving), and concurrent reads during active commits.

use crate::CowStore;
use sg_pager::PageStore;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PS: usize = 256;

fn temp(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "sg-store-{name}-{}-{}.cow",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn page(seed: u8) -> Vec<u8> {
    vec![seed; PS]
}

fn read(store: &dyn PageStore, id: u64) -> Vec<u8> {
    let mut buf = vec![0u8; PS];
    store.read(id, &mut buf);
    buf
}

#[test]
fn fresh_open_is_created_at_tx_zero() {
    let path = temp("fresh");
    let (store, rep) = CowStore::open(&path, PS).unwrap();
    assert!(rep.created);
    assert_eq!(rep.tx_id, 0);
    assert_eq!(rep.checkpoint_lsn, 0);
    assert_eq!(rep.n_logical, 0);
    assert_eq!(store.allocated_pages(), 0);
    drop(store);
    // Reopening the empty-but-initialized file is not "created".
    let (_store, rep) = CowStore::open(&path, PS).unwrap();
    assert!(!rep.created);
    assert_eq!(rep.tx_id, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn allocate_is_zeroed_and_ids_recycle() {
    let path = temp("alloc");
    let (store, _) = CowStore::open(&path, PS).unwrap();
    let a = store.allocate();
    let b = store.allocate();
    assert_ne!(a, b);
    store.write(a, &page(0xAA));
    assert!(read(store.as_ref(), b).iter().all(|&x| x == 0));
    store.free(a);
    let c = store.allocate();
    assert_eq!(c, a, "freed logical ids are recycled");
    assert!(
        read(store.as_ref(), c).iter().all(|&x| x == 0),
        "recycled page is zeroed"
    );
    assert_eq!(store.allocated_pages(), 2);
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn commit_then_reopen_restores_exactly_the_committed_state() {
    let path = temp("reopen");
    let (a, b);
    {
        let (store, _) = CowStore::open(&path, PS).unwrap();
        a = store.allocate();
        b = store.allocate();
        store.write(a, &page(1));
        store.write(b, &page(2));
        assert_eq!(store.commit(42, true).unwrap(), 1);
        // Post-commit mutations that are never committed must vanish.
        store.write(a, &page(9));
        let c = store.allocate();
        store.write(c, &page(10));
    }
    let (store, rep) = CowStore::open(&path, PS).unwrap();
    assert_eq!(rep.tx_id, 1);
    assert_eq!(rep.checkpoint_lsn, 42);
    assert_eq!(store.allocated_pages(), 2);
    assert_eq!(
        read(store.as_ref(), a),
        page(1),
        "uncommitted overwrite rolled back"
    );
    assert_eq!(read(store.as_ref(), b), page(2));
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_meta_flip_falls_back_to_previous_commit() {
    let path = temp("torn");
    let a;
    {
        let (store, _) = CowStore::open(&path, PS).unwrap();
        a = store.allocate();
        store.write(a, &page(1));
        store.commit(10, true).unwrap(); // tx 1 → slot 1
        store.write(a, &page(2));
        store.commit(20, true).unwrap(); // tx 2 → slot 0
    }
    // Simulate a crash that tore the tx-2 flip: corrupt one byte inside
    // slot 0's CRC-covered record.
    {
        use std::io::{Read, Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let mut byte = [0u8; 1];
        f.seek(SeekFrom::Start(20)).unwrap();
        f.read_exact(&mut byte).unwrap();
        f.seek(SeekFrom::Start(20)).unwrap();
        f.write_all(&[byte[0] ^ 0xFF]).unwrap();
        f.sync_data().unwrap();
    }
    let (store, rep) = CowStore::open(&path, PS).unwrap();
    assert_eq!(rep.tx_id, 1, "recovery falls back to the intact commit");
    assert_eq!(rep.checkpoint_lsn, 10);
    assert_eq!(
        read(store.as_ref(), a),
        page(1),
        "previous commit's bytes are intact"
    );
    // The store keeps working: a fresh commit flips forward again.
    store.write(a, &page(3));
    assert_eq!(store.commit(30, true).unwrap(), 2);
    drop(store);
    let (store, rep) = CowStore::open(&path, PS).unwrap();
    assert_eq!(rep.tx_id, 2);
    assert_eq!(read(store.as_ref(), a), page(3));
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshots_are_isolated_from_later_writes_and_commits() {
    let path = temp("isolation");
    let (store, _) = CowStore::open(&path, PS).unwrap();
    let a = store.allocate();
    let b = store.allocate();
    store.write(a, &page(1));
    store.write(b, &page(2));
    store.publish();
    let snap1 = store.snapshot();

    store.write(a, &page(11));
    store.free(b);
    store.commit(5, true).unwrap();
    store.publish();
    let snap2 = store.snapshot();

    store.write(a, &page(21));
    store.publish();

    // Each snapshot still reads exactly the bytes of its epoch.
    assert_eq!(read(&snap1, a), page(1));
    assert_eq!(
        read(&snap1, b),
        page(2),
        "freed page still readable through older pin"
    );
    assert_eq!(read(&snap2, a), page(11));
    assert_eq!(read(store.as_ref(), a), page(21));
    assert_eq!(snap1.allocated_pages(), 2);
    assert_eq!(snap2.allocated_pages(), 1);

    // Pins gate reclamation; dropping them releases the parked pages.
    let parked = store.stats().pages_pending_free;
    assert!(parked > 0);
    drop(snap1);
    drop(snap2);
    store.commit(6, true).unwrap();
    assert!(store.stats().pages_pending_free < parked);
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_views_stay_valid_while_the_file_grows() {
    let path = temp("growth");
    let (store, _) = CowStore::open(&path, PS).unwrap();
    let a = store.allocate();
    store.write(a, &page(7));
    store.publish();
    let snap = store.snapshot();
    // Allocate far past one segment so the file grows and remaps.
    let seg_pages = 4 * (4 << 20) / PS; // comfortably several segments
    for _ in 0..seg_pages / 64 {
        let id = store.allocate();
        store.write(id, &page(3));
    }
    assert_eq!(
        read(&snap, a),
        page(7),
        "old segment pointers stay valid after growth"
    );
    drop(snap);
    drop(store);
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_readers_during_active_commits_see_frozen_bytes() {
    let path = temp("concurrent");
    let (store, _) = CowStore::open(&path, PS).unwrap();
    let ids: Vec<u64> = (0..32).map(|_| store.allocate()).collect();
    for &id in &ids {
        store.write(id, &page(id as u8));
    }
    store.publish();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let store = Arc::clone(&store);
        let ids = ids.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let snap = store.snapshot();
                // Whatever epoch we pinned, every page must be internally
                // consistent: all bytes of a page equal (one whole write).
                for &id in &ids {
                    let buf = read(&snap, id);
                    assert!(
                        buf.iter().all(|&x| x == buf[0]),
                        "torn page observed through a pinned snapshot"
                    );
                }
            }
        }));
    }

    for round in 0..50u64 {
        for &id in &ids {
            store.write(id, &page((round % 251) as u8));
        }
        store.publish();
        if round % 5 == 0 {
            store.commit(round, false).unwrap();
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    drop(store);
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Randomized writer/checkpoint/reader interleaving (snapshot isolation)
// ---------------------------------------------------------------------------

mod interleaving {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        /// Allocate a page and fill it with `seed`.
        Alloc(u8),
        /// Overwrite the `i`-th live page with `seed`.
        Write(usize, u8),
        /// Free the `i`-th live page.
        Free(usize),
        /// Publish the current mapping.
        Publish,
        /// Durable checkpoint (meta flip) at the next LSN.
        Commit,
        /// Pin a snapshot of the published state.
        Pin,
        /// Drop the `i`-th live snapshot.
        Unpin(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // The vendored proptest shim's `prop_oneof!` is unweighted, so
        // heavier arms are simply repeated.
        prop_oneof![
            any::<u8>().prop_map(Op::Alloc),
            any::<u8>().prop_map(Op::Alloc),
            (any::<usize>(), any::<u8>()).prop_map(|(i, s)| Op::Write(i, s)),
            (any::<usize>(), any::<u8>()).prop_map(|(i, s)| Op::Write(i, s)),
            (any::<usize>(), any::<u8>()).prop_map(|(i, s)| Op::Write(i, s)),
            any::<usize>().prop_map(Op::Free),
            Just(Op::Publish),
            Just(Op::Publish),
            Just(Op::Commit),
            Just(Op::Pin),
            Just(Op::Pin),
            any::<usize>().prop_map(Op::Unpin),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Model check: every pinned snapshot answers byte-identically to
        // the published state it pinned, no matter how writers, frees,
        // publishes and checkpoints interleave afterwards; reopening
        // restores exactly the last committed model.
        #[test]
        fn pinned_readers_see_their_epoch_exactly(ops in prop::collection::vec(op_strategy(), 1..80)) {
            let path = temp("prop");
            let (store, _) = CowStore::open(&path, PS).unwrap();

            // Model state: live logical pages → seed byte.
            let mut live: HashMap<u64, u8> = HashMap::new();
            let mut published: HashMap<u64, u8> = HashMap::new();
            let mut committed: HashMap<u64, u8> = HashMap::new();
            let mut pins: Vec<(crate::Snapshot, HashMap<u64, u8>)> = Vec::new();
            let mut lsn = 0u64;

            for op in ops {
                match op {
                    Op::Alloc(seed) => {
                        let id = store.allocate();
                        store.write(id, &page(seed));
                        live.insert(id, seed);
                    }
                    Op::Write(i, seed) => {
                        let mut ids: Vec<u64> = live.keys().copied().collect();
                        ids.sort_unstable();
                        if ids.is_empty() { continue; }
                        let id = ids[i % ids.len()];
                        store.write(id, &page(seed));
                        live.insert(id, seed);
                    }
                    Op::Free(i) => {
                        let mut ids: Vec<u64> = live.keys().copied().collect();
                        ids.sort_unstable();
                        if ids.is_empty() { continue; }
                        let id = ids[i % ids.len()];
                        store.free(id);
                        live.remove(&id);
                    }
                    Op::Publish => {
                        store.publish();
                        published = live.clone();
                    }
                    Op::Commit => {
                        lsn += 1;
                        store.commit(lsn, false).unwrap();
                        committed = live.clone();
                    }
                    Op::Pin => {
                        pins.push((store.snapshot(), published.clone()));
                    }
                    Op::Unpin(i) => {
                        if pins.is_empty() { continue; }
                        let i = i % pins.len();
                        pins.swap_remove(i);
                    }
                }

                // Every live pin must read exactly its pinned bytes after
                // every step.
                for (snap, expect) in &pins {
                    for (&id, &seed) in expect {
                        prop_assert_eq!(read(snap, id), page(seed), "snapshot diverged at page {}", id);
                    }
                }
            }

            // Final durable commit, then recovery restores the model.
            drop(pins);
            store.commit(lsn + 1, true).unwrap();
            let committed_now: HashMap<u64, u8> = live.clone();
            drop(committed);
            drop(store);
            let (store, _) = CowStore::open(&path, PS).unwrap();
            prop_assert_eq!(store.allocated_pages(), committed_now.len() as u64);
            for (&id, &seed) in &committed_now {
                prop_assert_eq!(read(store.as_ref(), id), page(seed));
            }
            drop(store);
            std::fs::remove_file(&path).ok();
        }
    }
}
