//! End-to-end demo: build an index, start the TCP server in-process, run
//! a few queries through a real socket, then drain gracefully.
//!
//! ```text
//! cargo run --example serve_demo
//! ```

use sg_exec::{ExecConfig, ShardedExecutor};
use sg_obs::Registry;
use sg_serve::{Client, ContainmentMode, MetricName, Response, ServeConfig, Server};
use sg_sig::Signature;
use std::sync::Arc;

fn main() {
    // A tiny clustered dataset: transaction `tid` holds items
    // {tid % 32, tid % 32 + 1, 40}.
    let nbits = 128;
    let data: Vec<(u64, Signature)> = (0..2000)
        .map(|tid| {
            let base = (tid % 32) as u32;
            (tid, Signature::from_items(nbits, &[base, base + 1, 40]))
        })
        .collect();
    let exec = Arc::new(
        ShardedExecutor::build(nbits, &data, &ExecConfig::default())
            .expect("build sharded executor"),
    );

    let registry = Arc::new(Registry::new());
    let server =
        Server::start(exec, Arc::clone(&registry), ServeConfig::default()).expect("start server");
    println!("server listening on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Five nearest neighbors of {3, 4, 40} under Hamming distance.
    match client
        .knn(&[3, 4, 40], 5, MetricName::Hamming, None)
        .unwrap()
    {
        Response::Neighbors { pairs, .. } => {
            println!("knn({{3,4,40}}, 5):");
            for (dist, tid) in pairs {
                println!("  dist={dist:<4} tid={tid}");
            }
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // Everything containing both items {7, 8}.
    match client
        .containment(ContainmentMode::Containing, &[7, 8], None)
        .unwrap()
    {
        Response::Tids { tids, .. } => {
            println!("containing({{7,8}}): {} transactions", tids.len())
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // Jaccard similarity >= 0.5 against {3, 4, 40}.
    match client
        .similarity(&[3, 4, 40], 0.5, MetricName::Jaccard, None)
        .unwrap()
    {
        Response::Neighbors { pairs, .. } => {
            println!("similarity({{3,4,40}}, >=0.5): {} hits", pairs.len())
        }
        other => panic!("unexpected response: {other:?}"),
    }

    drop(client);
    let report = server.join();
    println!(
        "graceful drain complete: served={} busy_rejected={} errors={}",
        report.requests, report.busy_rejected, report.errors
    );
}
