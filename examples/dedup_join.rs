//! Near-duplicate detection with a similarity self-join (§4.2's query
//! family): find all pairs of baskets within a small Hamming distance —
//! the index-level primitive behind entity resolution and record
//! de-duplication on set-valued attributes.
//!
//! Builds two trees over overlapping snapshots of a basket stream (a
//! "yesterday vs today" reconciliation), joins them at a small ε, and
//! also reports the overall closest pair. Compares against the quadratic
//! nested loop to show the pruning.
//!
//! ```sh
//! cargo run --release -p sg-bench --example dedup_join
//! ```

use sg_pager::MemStore;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_quest::perturb;
use sg_sig::{Metric, Signature};
use sg_tree::{SgTree, TreeConfig};
use std::sync::Arc;
use std::time::Instant;

const N: usize = 8_000;
const NBITS: u32 = 1000;
const EPS: f64 = 2.0;

fn build(data: &[(u64, Signature)]) -> SgTree {
    let mut tree = SgTree::create(
        Arc::new(MemStore::new(4096)),
        TreeConfig::new(NBITS).pool_frames(2048),
    )
    .expect("valid config");
    for (tid, sig) in data {
        tree.insert(*tid, sig);
    }
    tree
}

fn main() {
    let pool = PatternPool::new(BasketParams::standard(12, 6), 2024);
    let ds = pool.dataset(N, 2024);
    let yesterday: Vec<(u64, Signature)> = ds
        .signatures()
        .into_iter()
        .enumerate()
        .map(|(tid, s)| (tid as u64, s))
        .collect();

    // Today's snapshot: the same baskets lightly edited (1–2 item churn)
    // plus some fresh ones — the classic near-duplicate situation.
    let mut rng_state = 0xD00D_F00Du64;
    let mut rng = move || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng_state
    };
    let mut today: Vec<(u64, Signature)> = yesterday
        .iter()
        .map(|(tid, s)| {
            let r = (rng() >> 60) as u32 % 3; // 0–2 edits
            (tid + 1_000_000, perturb(s, r, &mut rng))
        })
        .collect();
    let fresh = pool.dataset(N / 10, 777);
    for (off, s) in fresh.signatures().into_iter().enumerate() {
        today.push((2_000_000 + off as u64, s));
    }

    let t0 = Instant::now();
    let tree_a = build(&yesterday);
    let tree_b = build(&today);
    println!(
        "indexed {} + {} baskets in {:.2}s",
        yesterday.len(),
        today.len(),
        t0.elapsed().as_secs_f64()
    );

    let m = Metric::hamming();
    let t0 = Instant::now();
    let (pairs, stats) = tree_a.similarity_join(&tree_b, EPS, &m);
    let join_secs = t0.elapsed().as_secs_f64();
    let exact_matches = pairs.iter().filter(|p| p.dist == 0.0).count();
    println!(
        "\njoin at ε = {EPS}: {} matched pairs ({} identical) in {:.2}s",
        pairs.len(),
        exact_matches,
        join_secs
    );
    let full = (yesterday.len() * today.len()) as u64;
    println!(
        "  distance computations: {} of {} possible pairs ({:.3}%)",
        stats.dist_computations,
        full,
        100.0 * stats.dist_computations as f64 / full as f64
    );

    // How many of yesterday's baskets found their (edited) counterpart?
    let mut matched = std::collections::HashSet::new();
    for p in &pairs {
        if p.right == p.left + 1_000_000 {
            matched.insert(p.left);
        }
    }
    println!(
        "  {} / {} baskets re-identified across snapshots at ε = {EPS}",
        matched.len(),
        yesterday.len()
    );

    let t0 = Instant::now();
    let (best, _) = tree_a.closest_pair(&tree_b, &m);
    let best = best.expect("nonempty trees");
    println!(
        "\nclosest pair overall: ({}, {}) at distance {} ({:.2}s)",
        best.left,
        best.right,
        best.dist,
        t0.elapsed().as_secs_f64()
    );
}
