//! Parallel search: shard a basket dataset across several SG-trees and
//! serve similarity queries through the sharded executor.
//!
//! ```sh
//! cargo run --release -p sg-bench --example parallel_search
//! ```

use sg_bench::workloads::{pairs_of, SEED};
use sg_exec::{ExecConfig, Partitioner, QueryOptions, QueryOutput, QueryRequest, ShardedExecutor};
use sg_obs::Registry;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use std::time::Instant;

fn main() {
    // A synthetic T8.I4 market-basket workload, as in the paper's §5.
    let pool = PatternPool::new(BasketParams::standard(8, 4), SEED);
    let ds = pool.dataset(20_000, SEED);
    let data = pairs_of(&ds);
    let queries: Vec<Signature> = pool
        .queries(64, SEED ^ 1)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    let m = Metric::jaccard();

    // Partition across 4 shards; similar transactions co-locate, so whole
    // shards prune early on clustered queries.
    let exec = ShardedExecutor::build(
        ds.n_items,
        &data,
        &ExecConfig {
            shards: 4,
            partitioner: Partitioner::SignatureClustered,
            ..ExecConfig::default()
        },
    )
    .expect("valid executor config");
    let registry = Registry::new();
    let obs = exec.register_obs(&registry, "exec");
    println!(
        "built {} shards over {} transactions ({} worker threads)\n",
        exec.shards(),
        exec.len(),
        exec.threads()
    );

    // One k-NN through the unified query API, with the fan-out EXPLAIN
    // trace: the parent line is the executor's merge, each child is one
    // shard's branch-and-bound search.
    let resp = exec
        .query(
            &QueryRequest::Knn {
                q: queries[0].clone(),
                k: 5,
                metric: m,
            },
            &QueryOptions::traced(),
        )
        .expect("valid query");
    println!("5-NN of query 0 (Jaccard):");
    if let QueryOutput::Neighbors(hits) = &resp.output {
        for n in hits {
            println!("  tid {:>6}  dist {:.3}", n.tid, n.dist);
        }
    }
    println!(
        "\nmerge took {} ns; per-shard nodes visited: {:?}\n",
        resp.merge_ns,
        resp.per_shard
            .iter()
            .map(|s| s.nodes_accessed)
            .collect::<Vec<_>>()
    );
    println!("{}", resp.trace.expect("traced query").render());

    // Batched execution pipelines every query × shard task through the
    // worker pool at once.
    let batch: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::Knn {
            q: q.clone(),
            k: 10,
            metric: m,
        })
        .collect();
    let t0 = Instant::now();
    let results = exec.execute_batch(batch);
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "batch of {} k-NN queries: {:.1} q/s ({} shard tasks)",
        results.len(),
        results.len() as f64 / secs,
        results.len() * exec.shards()
    );
    println!(
        "executor counters: {} queries, {} batches, p50 query {} ns",
        obs.queries.get(),
        obs.batches.get(),
        obs.query_ns.snapshot().quantile(0.5)
    );
}
