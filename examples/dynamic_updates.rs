//! Dynamic maintenance — the §5.5 story in miniature: the SG-tree adapts
//! to distribution drift through its insertion heuristics while the
//! SG-table stays hashed by the stale vertical signatures it derived from
//! the first batch.
//!
//! Inserts three batches of transactions drawn from *different* pattern
//! pools, measures NN pruning on both structures after each batch, and
//! then demonstrates deletions (the tree rebalances via reinsertion; the
//! paper's table has no delete path at all, so it sits this part out).
//!
//! ```sh
//! cargo run --release -p sg-bench --example dynamic_updates
//! ```

use sg_pager::MemStore;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use sg_table::{SgTable, TableParams};
use sg_tree::{SgTree, TreeConfig};
use std::sync::Arc;

const BATCH: usize = 20_000;
const NBITS: u32 = 1000;

fn main() {
    let metric = Metric::hamming();
    let pools: Vec<PatternPool> = (0..3)
        .map(|b| PatternPool::new(BasketParams::standard(10, 6), 1000 + b))
        .collect();

    // Build both structures from batch 0.
    let ds0 = pools[0].dataset(BATCH, 1);
    let data0: Vec<(u64, Signature)> = ds0
        .signatures()
        .into_iter()
        .enumerate()
        .map(|(tid, s)| (tid as u64, s))
        .collect();
    let mut tree = SgTree::create(
        Arc::new(MemStore::new(4096)),
        TreeConfig::new(NBITS).pool_frames(1024),
    )
    .expect("valid config");
    for (tid, sig) in &data0 {
        tree.insert(*tid, sig);
    }
    let mut table = SgTable::build(
        Arc::new(MemStore::new(4096)),
        NBITS,
        &TableParams::default(),
        &data0,
    );

    let mut total = BATCH;
    let mut kept: Vec<(u64, Signature)> = data0;
    #[allow(clippy::needless_range_loop)] // phase both indexes pools and labels output
    for phase in 0..3usize {
        if phase > 0 {
            let ds = pools[phase].dataset(BATCH, 1 + phase as u64);
            for (off, sig) in ds.signatures().into_iter().enumerate() {
                let tid = (total + off) as u64;
                tree.insert(tid, &sig);
                table.insert(tid, &sig);
                kept.push((tid, sig));
            }
            total += BATCH;
        }
        // Query with transactions from the newest batch: the drifted data.
        let queries: Vec<Signature> = pools[phase]
            .queries(40, 9)
            .iter()
            .map(|q| Signature::from_items(NBITS, q))
            .collect();
        let mut tree_cmp = 0u64;
        let mut table_cmp = 0u64;
        for q in &queries {
            let (a, s1) = tree.nn(q, &metric);
            let (b, s2) = table.nn(q, &metric);
            assert_eq!(a[0].dist, b[0].dist, "both exact");
            tree_cmp += s1.data_compared;
            table_cmp += s2.data_compared;
        }
        let denom = (total * queries.len()) as f64;
        println!(
            "after batch {}: {total} transactions | %data compared on \
             batch-{phase} queries: SG-tree {:5.2}%  SG-table {:5.2}%",
            phase,
            100.0 * tree_cmp as f64 / denom,
            100.0 * table_cmp as f64 / denom,
        );
    }

    // Deletions: retire the oldest half of batch 0.
    let to_delete: Vec<(u64, Signature)> = kept[..BATCH / 2].to_vec();
    for (tid, sig) in &to_delete {
        assert!(tree.delete(*tid, sig));
    }
    tree.validate();
    println!(
        "\ndeleted {} old transactions; tree still valid with {} entries \
         (height {})",
        to_delete.len(),
        tree.len(),
        tree.height()
    );
    let q = Signature::from_items(NBITS, &pools[0].queries(1, 33)[0]);
    let (nn, _) = tree.nn(&q, &metric);
    println!(
        "post-delete NN query still answers: tid {} at distance {}",
        nn[0].tid, nn[0].dist
    );
}
