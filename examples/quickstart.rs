//! Quickstart: build an SG-tree over a handful of market-basket
//! transactions and run the paper's core query types.
//!
//! ```sh
//! cargo run --release -p sg-bench --example quickstart
//! ```

use sg_pager::MemStore;
use sg_sig::{Metric, Signature};
use sg_tree::{SgTree, TreeConfig};
use std::sync::Arc;

fn main() {
    // An item universe of 64 products. In a real catalogue you would map
    // SKUs to dense ids once and keep the mapping alongside the tree.
    const N: u32 = 64;
    let products = [
        "bread", "milk", "butter", "eggs", "coffee", "tea", "sugar", "beer", "chips", "salsa",
        "apples", "pears",
    ];
    let id = |name: &str| products.iter().position(|p| *p == name).unwrap() as u32;
    let basket =
        |names: &[&str]| -> Signature { Signature::from_iter(N, names.iter().map(|n| id(n))) };

    // The index lives on fixed-size pages; MemStore keeps them in memory,
    // FileStore would put the same bytes on disk.
    let store = Arc::new(MemStore::new(1024));
    let mut tree = SgTree::create(store, TreeConfig::new(N)).expect("valid config");

    let baskets = [
        (0u64, basket(&["bread", "milk", "butter"])),
        (1, basket(&["bread", "milk", "eggs"])),
        (2, basket(&["coffee", "sugar"])),
        (3, basket(&["tea", "sugar", "milk"])),
        (4, basket(&["beer", "chips", "salsa"])),
        (5, basket(&["beer", "chips"])),
        (6, basket(&["apples", "pears", "milk"])),
        (7, basket(&["bread", "butter", "eggs", "milk"])),
    ];
    for (tid, sig) in &baskets {
        tree.insert(*tid, sig);
    }
    println!(
        "indexed {} baskets, tree height {}",
        tree.len(),
        tree.height()
    );

    // Nearest neighbor: which basket is most similar to a new customer's?
    let q = basket(&["bread", "milk"]);
    let metric = Metric::hamming();
    let (nn, stats) = tree.nn(&q, &metric);
    println!(
        "NN of {{bread, milk}} -> basket {} at Hamming distance {} \
         ({} of 8 baskets compared)",
        nn[0].tid, nn[0].dist, stats.data_compared
    );

    // k-NN and range queries.
    let (top3, _) = tree.knn(&q, 3, &metric);
    println!(
        "top-3: {:?}",
        top3.iter().map(|n| (n.tid, n.dist)).collect::<Vec<_>>()
    );
    let (close, _) = tree.range(&q, 2.0, &metric);
    println!(
        "within distance 2: {:?}",
        close.iter().map(|n| n.tid).collect::<Vec<_>>()
    );

    // Containment: §3's example query type — all baskets holding a given
    // itemset.
    let (with_beer_chips, _) = tree.containing(&basket(&["beer", "chips"]));
    println!("baskets containing {{beer, chips}}: {with_beer_chips:?}");

    // EXPLAIN a k-NN query: per-level nodes visited, entries pruned by the
    // directory lower bound, and exact distances computed.
    let resp = tree
        .query(
            &sg_tree::QueryRequest::Knn {
                q: q.clone(),
                k: 3,
                metric,
            },
            &sg_tree::QueryOptions::traced(),
        )
        .expect("valid query");
    let trace = resp.trace.expect("traced query carries a trace");
    println!("\n{}", trace.render());
    // The trace round-trips through JSON for log pipelines.
    let roundtrip = sg_tree::QueryTrace::from_json(&trace.to_json()).expect("valid trace JSON");
    assert_eq!(roundtrip, trace);

    // The index is dynamic: delete a basket and re-query.
    assert!(tree.delete(0, &baskets[0].1));
    let (nn_after, _) = tree.nn(&q, &metric);
    println!("after deleting basket 0, NN is basket {}", nn_after[0].tid);
}
