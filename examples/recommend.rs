//! Recommendations over market-basket data — the paper's motivating
//! scenario (§1): "given a transaction corresponding to a customer, find
//! the most similar transactions in the database in order to provide
//! recommendations about items the customer would be interested in."
//!
//! Generates a `T10.I6.D50K` dataset with the Agrawal–Srikant generator,
//! indexes it with an SG-tree, and for a few query customers retrieves the
//! k most similar historical baskets and scores candidate items by how
//! often they appear in those baskets.
//!
//! ```sh
//! cargo run --release -p sg-bench --example recommend
//! ```

use sg_pager::MemStore;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use sg_tree::{SgTree, TreeConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    const D: usize = 50_000;
    const K: usize = 25; // neighbors consulted per recommendation
    let pool = PatternPool::new(BasketParams::standard(10, 6), 42);
    let ds = pool.dataset(D, 42);
    let nbits = ds.n_items;

    let mut tree = SgTree::create(
        Arc::new(MemStore::new(4096)),
        TreeConfig::new(nbits).pool_frames(1024),
    )
    .expect("valid config");
    let t0 = Instant::now();
    let sigs = ds.signatures();
    for (tid, sig) in sigs.iter().enumerate() {
        tree.insert(tid as u64, sig);
    }
    println!(
        "indexed {D} baskets over {nbits} items in {:.2}s (tree height {})",
        t0.elapsed().as_secs_f64(),
        tree.height()
    );

    let metric = Metric::hamming();
    for (qi, customer) in pool.queries(3, 42).iter().enumerate() {
        let q = Signature::from_items(nbits, customer);
        let t0 = Instant::now();
        let (neighbors, stats) = tree.knn(&q, K, &metric);
        let elapsed = t0.elapsed();

        // Score candidate items by support among the K nearest baskets,
        // excluding what the customer already has.
        let mut score: HashMap<u32, u32> = HashMap::new();
        for n in &neighbors {
            for item in sigs[n.tid as usize].ones() {
                if !q.get(item) {
                    *score.entry(item).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(u32, u32)> = score.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(5);

        println!("\ncustomer {qi}: basket {:?}", customer);
        println!(
            "  {K} nearest baskets found in {:.2}ms, comparing {:.1}% of the data",
            elapsed.as_secs_f64() * 1000.0,
            100.0 * stats.data_compared as f64 / D as f64
        );
        println!(
            "  nearest basket at distance {}, farthest of the {K} at {}",
            neighbors.first().map_or(f64::NAN, |n| n.dist),
            neighbors.last().map_or(f64::NAN, |n| n.dist)
        );
        println!("  recommended items (item id, support among neighbors):");
        for (item, support) in ranked {
            println!("    item {item:4}  seen in {support}/{K} similar baskets");
        }
    }
}
