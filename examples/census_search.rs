//! Categorical similarity search on CENSUS-shaped data — the paper's §5.4
//! scenario: 36 categorical attributes, 525 values, fixed tuple size.
//!
//! Shows the §6 fixed-dimensionality optimization: with every tuple
//! carrying exactly 36 set bits, the directory lower bound
//! `|q| + d − 2|q ∩ e|` prunes far more than the relaxed `|q \ e|`, at
//! identical results.
//!
//! ```sh
//! cargo run --release -p sg-bench --example census_search
//! ```

use sg_pager::MemStore;
use sg_quest::census::{CensusGenerator, CensusParams, Schema};
use sg_sig::{Metric, MetricKind, Signature};
use sg_tree::{cluster, SgTree, TreeConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    const D: usize = 50_000;
    let schema = Schema::census();
    println!(
        "schema: {} categorical attributes, {} values total (domains {}..{})",
        schema.n_attrs(),
        schema.n_values(),
        (0..schema.n_attrs())
            .map(|a| schema.domain_size(a))
            .min()
            .unwrap(),
        (0..schema.n_attrs())
            .map(|a| schema.domain_size(a))
            .max()
            .unwrap(),
    );
    let gen = CensusGenerator::new(schema, CensusParams::default(), 7);
    let ds = gen.dataset(D, 7);
    let nbits = ds.n_items;

    let mut tree = SgTree::create(
        Arc::new(MemStore::new(4096)),
        TreeConfig::new(nbits).pool_frames(1024),
    )
    .expect("valid config");
    let t0 = Instant::now();
    for (tid, sig) in ds.signatures().into_iter().enumerate() {
        tree.insert(tid as u64, &sig);
    }
    println!(
        "indexed {D} tuples in {:.2}s; capacity C = {} entries/node, height {}",
        t0.elapsed().as_secs_f64(),
        tree.capacity(),
        tree.height()
    );

    // Queries from the held-out stream (the paper queries the indexed 200K
    // dataset with samples from the disjoint 100K one).
    let queries: Vec<Signature> = gen
        .queries(50, 7)
        .iter()
        .map(|q| Signature::from_items(nbits, q))
        .collect();

    let relaxed = Metric::hamming();
    let strict = Metric::with_fixed_dim(MetricKind::Hamming, 36);
    let mut cmp = [0u64; 2];
    let mut checked = 0usize;
    for q in &queries {
        let (r1, s1) = tree.knn(q, 5, &relaxed);
        let (r2, s2) = tree.knn(q, 5, &strict);
        let d1: Vec<f64> = r1.iter().map(|n| n.dist).collect();
        let d2: Vec<f64> = r2.iter().map(|n| n.dist).collect();
        assert_eq!(d1, d2, "both bounds are exact");
        cmp[0] += s1.data_compared;
        cmp[1] += s2.data_compared;
        checked += 1;
    }
    println!("\n5-NN over {checked} held-out query tuples (identical results):");
    println!(
        "  relaxed bound |q\\e|         : {:6.2}% of data compared",
        100.0 * cmp[0] as f64 / (D * checked) as f64
    );
    println!(
        "  fixed-dim bound (d = 36)    : {:6.2}% of data compared",
        100.0 * cmp[1] as f64 / (D * checked) as f64
    );

    // Categorical point lookups: all tuples agreeing with a query on a
    // subset of attributes = a containment query on the partial tuple.
    let sample = &ds.transactions[1234];
    let partial = Signature::from_items(nbits, &sample[0..6]);
    let t0 = Instant::now();
    let (hits, stats) = tree.containing(&partial);
    println!(
        "\ntuples agreeing with tuple #1234 on its first 6 attributes: {} \
         ({:.2}ms, {:.1}% of data compared)",
        hits.len(),
        t0.elapsed().as_secs_f64() * 1000.0,
        100.0 * stats.data_compared as f64 / D as f64
    );
    assert!(hits.contains(&1234));

    // §6 future work: derive a coarse demographic clustering directly from
    // the tree's leaves (no O(n²) pass over the tuples).
    let t0 = Instant::now();
    let clustering = cluster::leaf_clusters(&tree, 8, &Metric::jaccard());
    println!(
        "\nleaf-guided clustering into {} groups in {:.2}ms; sizes: {:?}",
        clustering.k(),
        t0.elapsed().as_secs_f64() * 1000.0,
        clustering.sizes
    );
    let probe = Signature::from_items(nbits, &ds.transactions[0]);
    let home = clustering
        .nearest_cluster(&probe, &Metric::hamming())
        .expect("nonempty clustering");
    println!("tuple #0 routes to cluster {home}");
}
