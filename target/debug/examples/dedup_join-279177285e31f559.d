/root/repo/target/debug/examples/dedup_join-279177285e31f559.d: crates/bench/../../examples/dedup_join.rs

/root/repo/target/debug/examples/dedup_join-279177285e31f559: crates/bench/../../examples/dedup_join.rs

crates/bench/../../examples/dedup_join.rs:
