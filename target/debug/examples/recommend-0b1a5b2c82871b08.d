/root/repo/target/debug/examples/recommend-0b1a5b2c82871b08.d: crates/bench/../../examples/recommend.rs

/root/repo/target/debug/examples/recommend-0b1a5b2c82871b08: crates/bench/../../examples/recommend.rs

crates/bench/../../examples/recommend.rs:
