/root/repo/target/debug/examples/census_search-77fabab2e0950164.d: crates/bench/../../examples/census_search.rs

/root/repo/target/debug/examples/census_search-77fabab2e0950164: crates/bench/../../examples/census_search.rs

crates/bench/../../examples/census_search.rs:
