/root/repo/target/debug/examples/quickstart-f3593332fc636f42.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f3593332fc636f42.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
