/root/repo/target/debug/examples/census_search-a066c51173537fd3.d: crates/bench/../../examples/census_search.rs

/root/repo/target/debug/examples/census_search-a066c51173537fd3: crates/bench/../../examples/census_search.rs

crates/bench/../../examples/census_search.rs:
