/root/repo/target/debug/examples/census_search-a26f841a69229688.d: crates/bench/../../examples/census_search.rs Cargo.toml

/root/repo/target/debug/examples/libcensus_search-a26f841a69229688.rmeta: crates/bench/../../examples/census_search.rs Cargo.toml

crates/bench/../../examples/census_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
