/root/repo/target/debug/examples/dynamic_updates-3e96fd4c667d8f08.d: crates/bench/../../examples/dynamic_updates.rs

/root/repo/target/debug/examples/dynamic_updates-3e96fd4c667d8f08: crates/bench/../../examples/dynamic_updates.rs

crates/bench/../../examples/dynamic_updates.rs:
