/root/repo/target/debug/examples/dynamic_updates-e43d08924ee01f74.d: crates/bench/../../examples/dynamic_updates.rs

/root/repo/target/debug/examples/dynamic_updates-e43d08924ee01f74: crates/bench/../../examples/dynamic_updates.rs

crates/bench/../../examples/dynamic_updates.rs:
