/root/repo/target/debug/examples/dedup_join-206d28a7ee43872a.d: crates/bench/../../examples/dedup_join.rs Cargo.toml

/root/repo/target/debug/examples/libdedup_join-206d28a7ee43872a.rmeta: crates/bench/../../examples/dedup_join.rs Cargo.toml

crates/bench/../../examples/dedup_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
