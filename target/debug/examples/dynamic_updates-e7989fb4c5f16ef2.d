/root/repo/target/debug/examples/dynamic_updates-e7989fb4c5f16ef2.d: crates/bench/../../examples/dynamic_updates.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_updates-e7989fb4c5f16ef2.rmeta: crates/bench/../../examples/dynamic_updates.rs Cargo.toml

crates/bench/../../examples/dynamic_updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
