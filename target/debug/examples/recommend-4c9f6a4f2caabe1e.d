/root/repo/target/debug/examples/recommend-4c9f6a4f2caabe1e.d: crates/bench/../../examples/recommend.rs

/root/repo/target/debug/examples/recommend-4c9f6a4f2caabe1e: crates/bench/../../examples/recommend.rs

crates/bench/../../examples/recommend.rs:
