/root/repo/target/debug/examples/quickstart-6513d1b59202da2d.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6513d1b59202da2d: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
