/root/repo/target/debug/examples/recommend-16e5f1f4e9f96697.d: crates/bench/../../examples/recommend.rs Cargo.toml

/root/repo/target/debug/examples/librecommend-16e5f1f4e9f96697.rmeta: crates/bench/../../examples/recommend.rs Cargo.toml

crates/bench/../../examples/recommend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
