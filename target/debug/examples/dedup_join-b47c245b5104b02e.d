/root/repo/target/debug/examples/dedup_join-b47c245b5104b02e.d: crates/bench/../../examples/dedup_join.rs

/root/repo/target/debug/examples/dedup_join-b47c245b5104b02e: crates/bench/../../examples/dedup_join.rs

crates/bench/../../examples/dedup_join.rs:
