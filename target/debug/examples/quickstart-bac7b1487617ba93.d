/root/repo/target/debug/examples/quickstart-bac7b1487617ba93.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bac7b1487617ba93: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
