/root/repo/target/debug/deps/sg_sig-8aa6df1c90da75f6.d: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs crates/sig/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libsg_sig-8aa6df1c90da75f6.rmeta: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs crates/sig/src/proptests.rs Cargo.toml

crates/sig/src/lib.rs:
crates/sig/src/codec.rs:
crates/sig/src/metric.rs:
crates/sig/src/signature.rs:
crates/sig/src/vocab.rs:
crates/sig/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
