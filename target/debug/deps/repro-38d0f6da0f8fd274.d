/root/repo/target/debug/deps/repro-38d0f6da0f8fd274.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-38d0f6da0f8fd274: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
