/root/repo/target/debug/deps/integration_dynamic-bf7cfa854590fa17.d: crates/bench/../../tests/integration_dynamic.rs

/root/repo/target/debug/deps/integration_dynamic-bf7cfa854590fa17: crates/bench/../../tests/integration_dynamic.rs

crates/bench/../../tests/integration_dynamic.rs:
