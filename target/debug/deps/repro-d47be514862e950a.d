/root/repo/target/debug/deps/repro-d47be514862e950a.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-d47be514862e950a.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
