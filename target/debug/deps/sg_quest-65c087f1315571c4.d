/root/repo/target/debug/deps/sg_quest-65c087f1315571c4.d: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs

/root/repo/target/debug/deps/sg_quest-65c087f1315571c4: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs

crates/quest/src/lib.rs:
crates/quest/src/basket.rs:
crates/quest/src/census.rs:
crates/quest/src/dist.rs:
crates/quest/src/perturb.rs:
