/root/repo/target/debug/deps/sg_table-f5b4dbb9997e6612.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/debug/deps/sg_table-f5b4dbb9997e6612: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
