/root/repo/target/debug/deps/proptest-8fd705e272049a3d.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-8fd705e272049a3d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/prelude.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
