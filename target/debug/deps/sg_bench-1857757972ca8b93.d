/root/repo/target/debug/deps/sg_bench-1857757972ca8b93.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/sg_bench-1857757972ca8b93: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
