/root/repo/target/debug/deps/sg_pager-1c7240ab7c16325d.d: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/debug/deps/sg_pager-1c7240ab7c16325d: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

crates/pager/src/lib.rs:
crates/pager/src/buffer.rs:
crates/pager/src/stats.rs:
crates/pager/src/store.rs:
