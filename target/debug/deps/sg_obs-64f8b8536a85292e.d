/root/repo/target/debug/deps/sg_obs-64f8b8536a85292e.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/proptests.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libsg_obs-64f8b8536a85292e.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/proptests.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/proptests.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
