/root/repo/target/debug/deps/integration_joins-cd83acb1650a208e.d: crates/bench/../../tests/integration_joins.rs

/root/repo/target/debug/deps/integration_joins-cd83acb1650a208e: crates/bench/../../tests/integration_joins.rs

crates/bench/../../tests/integration_joins.rs:
