/root/repo/target/debug/deps/repro-dee6581b67c5ad3b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-dee6581b67c5ad3b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
