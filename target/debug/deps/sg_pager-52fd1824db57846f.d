/root/repo/target/debug/deps/sg_pager-52fd1824db57846f.d: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/debug/deps/libsg_pager-52fd1824db57846f.rlib: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/debug/deps/libsg_pager-52fd1824db57846f.rmeta: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

crates/pager/src/lib.rs:
crates/pager/src/buffer.rs:
crates/pager/src/stats.rs:
crates/pager/src/store.rs:
