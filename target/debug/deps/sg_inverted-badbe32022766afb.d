/root/repo/target/debug/deps/sg_inverted-badbe32022766afb.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

/root/repo/target/debug/deps/libsg_inverted-badbe32022766afb.rlib: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

/root/repo/target/debug/deps/libsg_inverted-badbe32022766afb.rmeta: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
