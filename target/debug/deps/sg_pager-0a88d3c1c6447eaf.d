/root/repo/target/debug/deps/sg_pager-0a88d3c1c6447eaf.d: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/debug/deps/sg_pager-0a88d3c1c6447eaf: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

crates/pager/src/lib.rs:
crates/pager/src/buffer.rs:
crates/pager/src/stats.rs:
crates/pager/src/store.rs:
