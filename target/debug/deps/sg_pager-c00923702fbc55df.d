/root/repo/target/debug/deps/sg_pager-c00923702fbc55df.d: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libsg_pager-c00923702fbc55df.rmeta: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs Cargo.toml

crates/pager/src/lib.rs:
crates/pager/src/buffer.rs:
crates/pager/src/stats.rs:
crates/pager/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
