/root/repo/target/debug/deps/proptest_indexes-1aeeb964fa5999fb.d: crates/bench/../../tests/proptest_indexes.rs

/root/repo/target/debug/deps/proptest_indexes-1aeeb964fa5999fb: crates/bench/../../tests/proptest_indexes.rs

crates/bench/../../tests/proptest_indexes.rs:
