/root/repo/target/debug/deps/integration_similarity-047354e60f0709fa.d: crates/bench/../../tests/integration_similarity.rs

/root/repo/target/debug/deps/integration_similarity-047354e60f0709fa: crates/bench/../../tests/integration_similarity.rs

crates/bench/../../tests/integration_similarity.rs:
