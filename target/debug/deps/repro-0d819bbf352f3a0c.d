/root/repo/target/debug/deps/repro-0d819bbf352f3a0c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-0d819bbf352f3a0c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
