/root/repo/target/debug/deps/integration_persistence-4d44d4bc14cf391b.d: crates/bench/../../tests/integration_persistence.rs

/root/repo/target/debug/deps/integration_persistence-4d44d4bc14cf391b: crates/bench/../../tests/integration_persistence.rs

crates/bench/../../tests/integration_persistence.rs:
