/root/repo/target/debug/deps/integration_dynamic-c68a752f91443b81.d: crates/bench/../../tests/integration_dynamic.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_dynamic-c68a752f91443b81.rmeta: crates/bench/../../tests/integration_dynamic.rs Cargo.toml

crates/bench/../../tests/integration_dynamic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
