/root/repo/target/debug/deps/proptest_indexes-9adc8c080fe2244b.d: crates/bench/../../tests/proptest_indexes.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_indexes-9adc8c080fe2244b.rmeta: crates/bench/../../tests/proptest_indexes.rs Cargo.toml

crates/bench/../../tests/proptest_indexes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
