/root/repo/target/debug/deps/sg_obs-9a03b45935e7583c.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/proptests.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/sg_obs-9a03b45935e7583c: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/proptests.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/proptests.rs:
crates/obs/src/trace.rs:
