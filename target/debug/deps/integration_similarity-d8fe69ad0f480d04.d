/root/repo/target/debug/deps/integration_similarity-d8fe69ad0f480d04.d: crates/bench/../../tests/integration_similarity.rs

/root/repo/target/debug/deps/integration_similarity-d8fe69ad0f480d04: crates/bench/../../tests/integration_similarity.rs

crates/bench/../../tests/integration_similarity.rs:
