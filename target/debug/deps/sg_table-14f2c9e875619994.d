/root/repo/target/debug/deps/sg_table-14f2c9e875619994.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/debug/deps/sg_table-14f2c9e875619994: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
