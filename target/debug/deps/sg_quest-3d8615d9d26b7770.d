/root/repo/target/debug/deps/sg_quest-3d8615d9d26b7770.d: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs Cargo.toml

/root/repo/target/debug/deps/libsg_quest-3d8615d9d26b7770.rmeta: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs Cargo.toml

crates/quest/src/lib.rs:
crates/quest/src/basket.rs:
crates/quest/src/census.rs:
crates/quest/src/dist.rs:
crates/quest/src/perturb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
