/root/repo/target/debug/deps/integration_persistence-196b825a15646f91.d: crates/bench/../../tests/integration_persistence.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_persistence-196b825a15646f91.rmeta: crates/bench/../../tests/integration_persistence.rs Cargo.toml

crates/bench/../../tests/integration_persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
