/root/repo/target/debug/deps/sg_table-52cb88deb9229efa.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/debug/deps/libsg_table-52cb88deb9229efa.rlib: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/debug/deps/libsg_table-52cb88deb9229efa.rmeta: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
