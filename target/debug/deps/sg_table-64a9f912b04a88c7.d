/root/repo/target/debug/deps/sg_table-64a9f912b04a88c7.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs Cargo.toml

/root/repo/target/debug/deps/libsg_table-64a9f912b04a88c7.rmeta: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs Cargo.toml

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
