/root/repo/target/debug/deps/sg_inverted-32662005fedfb040.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs crates/inverted/src/proptests.rs

/root/repo/target/debug/deps/sg_inverted-32662005fedfb040: crates/inverted/src/lib.rs crates/inverted/src/postings.rs crates/inverted/src/proptests.rs

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
crates/inverted/src/proptests.rs:
