/root/repo/target/debug/deps/repro-f3a420ec2dbf37ec.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-f3a420ec2dbf37ec: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
