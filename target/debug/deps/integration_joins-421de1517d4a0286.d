/root/repo/target/debug/deps/integration_joins-421de1517d4a0286.d: crates/bench/../../tests/integration_joins.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_joins-421de1517d4a0286.rmeta: crates/bench/../../tests/integration_joins.rs Cargo.toml

crates/bench/../../tests/integration_joins.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
