/root/repo/target/debug/deps/sg_inverted-62d88f769fc1690d.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

/root/repo/target/debug/deps/libsg_inverted-62d88f769fc1690d.rlib: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

/root/repo/target/debug/deps/libsg_inverted-62d88f769fc1690d.rmeta: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
