/root/repo/target/debug/deps/integration_baselines-c43381c37c8767f5.d: crates/bench/../../tests/integration_baselines.rs

/root/repo/target/debug/deps/integration_baselines-c43381c37c8767f5: crates/bench/../../tests/integration_baselines.rs

crates/bench/../../tests/integration_baselines.rs:
