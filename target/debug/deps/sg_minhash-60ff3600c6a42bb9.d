/root/repo/target/debug/deps/sg_minhash-60ff3600c6a42bb9.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/debug/deps/sg_minhash-60ff3600c6a42bb9: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
