/root/repo/target/debug/deps/calibrate-efbaa5867c5fe6f4.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-efbaa5867c5fe6f4: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
