/root/repo/target/debug/deps/calibrate-b28255a58b3e96aa.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-b28255a58b3e96aa: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
