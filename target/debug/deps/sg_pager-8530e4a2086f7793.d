/root/repo/target/debug/deps/sg_pager-8530e4a2086f7793.d: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/debug/deps/libsg_pager-8530e4a2086f7793.rlib: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/debug/deps/libsg_pager-8530e4a2086f7793.rmeta: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

crates/pager/src/lib.rs:
crates/pager/src/buffer.rs:
crates/pager/src/stats.rs:
crates/pager/src/store.rs:
