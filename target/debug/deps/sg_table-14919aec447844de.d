/root/repo/target/debug/deps/sg_table-14919aec447844de.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/debug/deps/libsg_table-14919aec447844de.rlib: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/debug/deps/libsg_table-14919aec447844de.rmeta: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
