/root/repo/target/debug/deps/integration_census-573d1f38d4d6afd8.d: crates/bench/../../tests/integration_census.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_census-573d1f38d4d6afd8.rmeta: crates/bench/../../tests/integration_census.rs Cargo.toml

crates/bench/../../tests/integration_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
