/root/repo/target/debug/deps/sg_bench-c121c2ac7d330364.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libsg_bench-c121c2ac7d330364.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libsg_bench-c121c2ac7d330364.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
