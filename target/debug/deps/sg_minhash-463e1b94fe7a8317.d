/root/repo/target/debug/deps/sg_minhash-463e1b94fe7a8317.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/debug/deps/sg_minhash-463e1b94fe7a8317: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
