/root/repo/target/debug/deps/integration_census-21cd912e53348bb0.d: crates/bench/../../tests/integration_census.rs

/root/repo/target/debug/deps/integration_census-21cd912e53348bb0: crates/bench/../../tests/integration_census.rs

crates/bench/../../tests/integration_census.rs:
