/root/repo/target/debug/deps/sg_obs-f7f8e8c7b5405522.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libsg_obs-f7f8e8c7b5405522.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
