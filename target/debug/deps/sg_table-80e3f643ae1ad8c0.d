/root/repo/target/debug/deps/sg_table-80e3f643ae1ad8c0.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs Cargo.toml

/root/repo/target/debug/deps/libsg_table-80e3f643ae1ad8c0.rmeta: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs Cargo.toml

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
