/root/repo/target/debug/deps/calibrate-331b223de85d2006.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-331b223de85d2006: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
