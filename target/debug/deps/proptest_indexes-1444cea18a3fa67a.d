/root/repo/target/debug/deps/proptest_indexes-1444cea18a3fa67a.d: crates/bench/../../tests/proptest_indexes.rs

/root/repo/target/debug/deps/proptest_indexes-1444cea18a3fa67a: crates/bench/../../tests/proptest_indexes.rs

crates/bench/../../tests/proptest_indexes.rs:
