/root/repo/target/debug/deps/integration_persistence-dab779bc29e8c771.d: crates/bench/../../tests/integration_persistence.rs

/root/repo/target/debug/deps/integration_persistence-dab779bc29e8c771: crates/bench/../../tests/integration_persistence.rs

crates/bench/../../tests/integration_persistence.rs:
