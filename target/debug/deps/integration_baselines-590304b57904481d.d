/root/repo/target/debug/deps/integration_baselines-590304b57904481d.d: crates/bench/../../tests/integration_baselines.rs

/root/repo/target/debug/deps/integration_baselines-590304b57904481d: crates/bench/../../tests/integration_baselines.rs

crates/bench/../../tests/integration_baselines.rs:
