/root/repo/target/debug/deps/calibrate-da6ef1767cc041bb.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-da6ef1767cc041bb: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
