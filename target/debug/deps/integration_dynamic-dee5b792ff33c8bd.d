/root/repo/target/debug/deps/integration_dynamic-dee5b792ff33c8bd.d: crates/bench/../../tests/integration_dynamic.rs

/root/repo/target/debug/deps/integration_dynamic-dee5b792ff33c8bd: crates/bench/../../tests/integration_dynamic.rs

crates/bench/../../tests/integration_dynamic.rs:
