/root/repo/target/debug/deps/sg_minhash-e4c4b37a4d1b4f15.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/debug/deps/libsg_minhash-e4c4b37a4d1b4f15.rlib: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/debug/deps/libsg_minhash-e4c4b37a4d1b4f15.rmeta: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
