/root/repo/target/debug/deps/sg_inverted-7dda7a96cf0bab0d.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

/root/repo/target/debug/deps/libsg_inverted-7dda7a96cf0bab0d.rlib: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

/root/repo/target/debug/deps/libsg_inverted-7dda7a96cf0bab0d.rmeta: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
