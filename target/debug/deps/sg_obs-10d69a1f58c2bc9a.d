/root/repo/target/debug/deps/sg_obs-10d69a1f58c2bc9a.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libsg_obs-10d69a1f58c2bc9a.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/libsg_obs-10d69a1f58c2bc9a.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
