/root/repo/target/debug/deps/sg_bench-141a03f1e041ecf7.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libsg_bench-141a03f1e041ecf7.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libsg_bench-141a03f1e041ecf7.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
