/root/repo/target/debug/deps/sg_inverted-5280f2c4b802da5b.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs crates/inverted/src/proptests.rs

/root/repo/target/debug/deps/sg_inverted-5280f2c4b802da5b: crates/inverted/src/lib.rs crates/inverted/src/postings.rs crates/inverted/src/proptests.rs

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
crates/inverted/src/proptests.rs:
