/root/repo/target/debug/deps/sg_inverted-b524c895073eef5d.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs Cargo.toml

/root/repo/target/debug/deps/libsg_inverted-b524c895073eef5d.rmeta: crates/inverted/src/lib.rs crates/inverted/src/postings.rs Cargo.toml

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
