/root/repo/target/debug/deps/repro-744efa02e004d71d.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-744efa02e004d71d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
