/root/repo/target/debug/deps/index_ops-c652d8bbdefa7a83.d: crates/bench/benches/index_ops.rs Cargo.toml

/root/repo/target/debug/deps/libindex_ops-c652d8bbdefa7a83.rmeta: crates/bench/benches/index_ops.rs Cargo.toml

crates/bench/benches/index_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
