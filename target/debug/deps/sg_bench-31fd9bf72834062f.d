/root/repo/target/debug/deps/sg_bench-31fd9bf72834062f.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/sg_bench-31fd9bf72834062f: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
