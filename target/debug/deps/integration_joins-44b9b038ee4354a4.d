/root/repo/target/debug/deps/integration_joins-44b9b038ee4354a4.d: crates/bench/../../tests/integration_joins.rs

/root/repo/target/debug/deps/integration_joins-44b9b038ee4354a4: crates/bench/../../tests/integration_joins.rs

crates/bench/../../tests/integration_joins.rs:
