/root/repo/target/debug/deps/sg_sig-06e5e95befde2227.d: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs

/root/repo/target/debug/deps/libsg_sig-06e5e95befde2227.rlib: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs

/root/repo/target/debug/deps/libsg_sig-06e5e95befde2227.rmeta: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs

crates/sig/src/lib.rs:
crates/sig/src/codec.rs:
crates/sig/src/metric.rs:
crates/sig/src/signature.rs:
crates/sig/src/vocab.rs:
