/root/repo/target/debug/deps/sg_sig-a104f19b5f671d4a.d: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libsg_sig-a104f19b5f671d4a.rmeta: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs Cargo.toml

crates/sig/src/lib.rs:
crates/sig/src/codec.rs:
crates/sig/src/metric.rs:
crates/sig/src/signature.rs:
crates/sig/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
