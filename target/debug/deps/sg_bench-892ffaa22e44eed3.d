/root/repo/target/debug/deps/sg_bench-892ffaa22e44eed3.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libsg_bench-892ffaa22e44eed3.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
