/root/repo/target/debug/deps/integration_baselines-4501d1bd57e59878.d: crates/bench/../../tests/integration_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_baselines-4501d1bd57e59878.rmeta: crates/bench/../../tests/integration_baselines.rs Cargo.toml

crates/bench/../../tests/integration_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
