/root/repo/target/debug/deps/sg_quest-cc515177f899be95.d: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs

/root/repo/target/debug/deps/libsg_quest-cc515177f899be95.rlib: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs

/root/repo/target/debug/deps/libsg_quest-cc515177f899be95.rmeta: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs

crates/quest/src/lib.rs:
crates/quest/src/basket.rs:
crates/quest/src/census.rs:
crates/quest/src/dist.rs:
crates/quest/src/perturb.rs:
