/root/repo/target/debug/deps/integration_similarity-db9333f315b23662.d: crates/bench/../../tests/integration_similarity.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_similarity-db9333f315b23662.rmeta: crates/bench/../../tests/integration_similarity.rs Cargo.toml

crates/bench/../../tests/integration_similarity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
