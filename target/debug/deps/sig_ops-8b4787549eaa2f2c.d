/root/repo/target/debug/deps/sig_ops-8b4787549eaa2f2c.d: crates/bench/benches/sig_ops.rs Cargo.toml

/root/repo/target/debug/deps/libsig_ops-8b4787549eaa2f2c.rmeta: crates/bench/benches/sig_ops.rs Cargo.toml

crates/bench/benches/sig_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
