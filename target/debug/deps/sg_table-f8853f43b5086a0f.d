/root/repo/target/debug/deps/sg_table-f8853f43b5086a0f.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/debug/deps/libsg_table-f8853f43b5086a0f.rlib: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/debug/deps/libsg_table-f8853f43b5086a0f.rmeta: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
