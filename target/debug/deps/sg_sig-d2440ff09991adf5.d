/root/repo/target/debug/deps/sg_sig-d2440ff09991adf5.d: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs crates/sig/src/proptests.rs

/root/repo/target/debug/deps/sg_sig-d2440ff09991adf5: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs crates/sig/src/proptests.rs

crates/sig/src/lib.rs:
crates/sig/src/codec.rs:
crates/sig/src/metric.rs:
crates/sig/src/signature.rs:
crates/sig/src/vocab.rs:
crates/sig/src/proptests.rs:
