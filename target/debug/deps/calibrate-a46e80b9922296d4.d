/root/repo/target/debug/deps/calibrate-a46e80b9922296d4.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-a46e80b9922296d4: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
