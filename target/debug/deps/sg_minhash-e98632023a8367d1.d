/root/repo/target/debug/deps/sg_minhash-e98632023a8367d1.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/debug/deps/libsg_minhash-e98632023a8367d1.rlib: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/debug/deps/libsg_minhash-e98632023a8367d1.rmeta: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
