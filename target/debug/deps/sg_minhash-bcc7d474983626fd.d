/root/repo/target/debug/deps/sg_minhash-bcc7d474983626fd.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs Cargo.toml

/root/repo/target/debug/deps/libsg_minhash-bcc7d474983626fd.rmeta: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs Cargo.toml

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
