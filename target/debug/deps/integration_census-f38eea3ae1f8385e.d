/root/repo/target/debug/deps/integration_census-f38eea3ae1f8385e.d: crates/bench/../../tests/integration_census.rs

/root/repo/target/debug/deps/integration_census-f38eea3ae1f8385e: crates/bench/../../tests/integration_census.rs

crates/bench/../../tests/integration_census.rs:
