/root/repo/target/debug/deps/sg_inverted-5b8884a63a9ea620.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs crates/inverted/src/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libsg_inverted-5b8884a63a9ea620.rmeta: crates/inverted/src/lib.rs crates/inverted/src/postings.rs crates/inverted/src/proptests.rs Cargo.toml

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
crates/inverted/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
