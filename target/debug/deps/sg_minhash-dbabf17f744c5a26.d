/root/repo/target/debug/deps/sg_minhash-dbabf17f744c5a26.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/debug/deps/libsg_minhash-dbabf17f744c5a26.rlib: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/debug/deps/libsg_minhash-dbabf17f744c5a26.rmeta: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
