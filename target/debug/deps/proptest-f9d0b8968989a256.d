/root/repo/target/debug/deps/proptest-f9d0b8968989a256.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-f9d0b8968989a256.rlib: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-f9d0b8968989a256.rmeta: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/prelude.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
