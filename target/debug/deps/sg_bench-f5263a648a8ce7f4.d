/root/repo/target/debug/deps/sg_bench-f5263a648a8ce7f4.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libsg_bench-f5263a648a8ce7f4.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libsg_bench-f5263a648a8ce7f4.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
