/root/repo/target/release/deps/integration_census-251342ced8c1bff1.d: crates/bench/../../tests/integration_census.rs Cargo.toml

/root/repo/target/release/deps/libintegration_census-251342ced8c1bff1.rmeta: crates/bench/../../tests/integration_census.rs Cargo.toml

crates/bench/../../tests/integration_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
