/root/repo/target/release/deps/index_ops-4393200792003770.d: crates/bench/benches/index_ops.rs Cargo.toml

/root/repo/target/release/deps/libindex_ops-4393200792003770.rmeta: crates/bench/benches/index_ops.rs Cargo.toml

crates/bench/benches/index_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
