/root/repo/target/release/deps/sg_table-1c219914d4a35879.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/release/deps/libsg_table-1c219914d4a35879.rlib: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/release/deps/libsg_table-1c219914d4a35879.rmeta: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
