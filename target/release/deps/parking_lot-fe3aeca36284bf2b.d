/root/repo/target/release/deps/parking_lot-fe3aeca36284bf2b.d: shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-fe3aeca36284bf2b.rmeta: shims/parking_lot/src/lib.rs Cargo.toml

shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
