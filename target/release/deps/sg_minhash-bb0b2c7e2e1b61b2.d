/root/repo/target/release/deps/sg_minhash-bb0b2c7e2e1b61b2.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/release/deps/libsg_minhash-bb0b2c7e2e1b61b2.rlib: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/release/deps/libsg_minhash-bb0b2c7e2e1b61b2.rmeta: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
