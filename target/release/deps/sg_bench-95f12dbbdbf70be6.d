/root/repo/target/release/deps/sg_bench-95f12dbbdbf70be6.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libsg_bench-95f12dbbdbf70be6.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libsg_bench-95f12dbbdbf70be6.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
