/root/repo/target/release/deps/sg_table-949da21d4c031a8d.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/release/deps/sg_table-949da21d4c031a8d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
