/root/repo/target/release/deps/sg_pager-12d741681b50c5ed.d: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/release/deps/libsg_pager-12d741681b50c5ed.rlib: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/release/deps/libsg_pager-12d741681b50c5ed.rmeta: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

crates/pager/src/lib.rs:
crates/pager/src/buffer.rs:
crates/pager/src/stats.rs:
crates/pager/src/store.rs:
