/root/repo/target/release/deps/calibrate-035e04a2e0795aff.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/release/deps/libcalibrate-035e04a2e0795aff.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
