/root/repo/target/release/deps/integration_dynamic-1201064545f17a96.d: crates/bench/../../tests/integration_dynamic.rs Cargo.toml

/root/repo/target/release/deps/libintegration_dynamic-1201064545f17a96.rmeta: crates/bench/../../tests/integration_dynamic.rs Cargo.toml

crates/bench/../../tests/integration_dynamic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
