/root/repo/target/release/deps/sg_inverted-338bad720189fdc7.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs crates/inverted/src/proptests.rs

/root/repo/target/release/deps/sg_inverted-338bad720189fdc7: crates/inverted/src/lib.rs crates/inverted/src/postings.rs crates/inverted/src/proptests.rs

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
crates/inverted/src/proptests.rs:
