/root/repo/target/release/deps/integration_baselines-459c2c8ae51f64bb.d: crates/bench/../../tests/integration_baselines.rs

/root/repo/target/release/deps/integration_baselines-459c2c8ae51f64bb: crates/bench/../../tests/integration_baselines.rs

crates/bench/../../tests/integration_baselines.rs:
