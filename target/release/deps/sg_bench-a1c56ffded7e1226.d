/root/repo/target/release/deps/sg_bench-a1c56ffded7e1226.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/release/deps/libsg_bench-a1c56ffded7e1226.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
