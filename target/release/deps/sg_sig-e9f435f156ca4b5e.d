/root/repo/target/release/deps/sg_sig-e9f435f156ca4b5e.d: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs

/root/repo/target/release/deps/libsg_sig-e9f435f156ca4b5e.rlib: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs

/root/repo/target/release/deps/libsg_sig-e9f435f156ca4b5e.rmeta: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs

crates/sig/src/lib.rs:
crates/sig/src/codec.rs:
crates/sig/src/metric.rs:
crates/sig/src/signature.rs:
crates/sig/src/vocab.rs:
