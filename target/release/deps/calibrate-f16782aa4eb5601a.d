/root/repo/target/release/deps/calibrate-f16782aa4eb5601a.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-f16782aa4eb5601a: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
