/root/repo/target/release/deps/sg_table-0ae402dd8f425762.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/release/deps/libsg_table-0ae402dd8f425762.rlib: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

/root/repo/target/release/deps/libsg_table-0ae402dd8f425762.rmeta: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
