/root/repo/target/release/deps/integration_dynamic-a87b8dc2b3fd9865.d: crates/bench/../../tests/integration_dynamic.rs

/root/repo/target/release/deps/integration_dynamic-a87b8dc2b3fd9865: crates/bench/../../tests/integration_dynamic.rs

crates/bench/../../tests/integration_dynamic.rs:
