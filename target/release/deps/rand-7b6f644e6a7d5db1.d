/root/repo/target/release/deps/rand-7b6f644e6a7d5db1.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-7b6f644e6a7d5db1: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
