/root/repo/target/release/deps/repro-e0fe2a1d6405e4bd.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-e0fe2a1d6405e4bd: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
