/root/repo/target/release/deps/sg_minhash-7cc6f66821483911.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs Cargo.toml

/root/repo/target/release/deps/libsg_minhash-7cc6f66821483911.rmeta: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs Cargo.toml

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
