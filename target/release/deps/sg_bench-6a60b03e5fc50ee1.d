/root/repo/target/release/deps/sg_bench-6a60b03e5fc50ee1.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libsg_bench-6a60b03e5fc50ee1.rlib: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libsg_bench-6a60b03e5fc50ee1.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
