/root/repo/target/release/deps/sg_obs-72919cfa29f5c4e5.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/proptests.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/sg_obs-72919cfa29f5c4e5: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/proptests.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/proptests.rs:
crates/obs/src/trace.rs:
