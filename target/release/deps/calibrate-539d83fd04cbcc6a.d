/root/repo/target/release/deps/calibrate-539d83fd04cbcc6a.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-539d83fd04cbcc6a: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
