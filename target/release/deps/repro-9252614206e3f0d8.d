/root/repo/target/release/deps/repro-9252614206e3f0d8.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/release/deps/librepro-9252614206e3f0d8.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
