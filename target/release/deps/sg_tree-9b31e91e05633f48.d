/root/repo/target/release/deps/sg_tree-9b31e91e05633f48.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delete.rs crates/core/src/insert.rs crates/core/src/node.rs crates/core/src/split.rs crates/core/src/tree.rs crates/core/src/bulkload.rs crates/core/src/cluster.rs crates/core/src/query/mod.rs crates/core/src/query/bestfirst.rs crates/core/src/query/containment.rs crates/core/src/query/dfs.rs crates/core/src/query/incremental.rs crates/core/src/query/join.rs crates/core/src/query/tests.rs crates/core/src/scan.rs crates/core/src/stats.rs crates/core/src/treestats.rs

/root/repo/target/release/deps/sg_tree-9b31e91e05633f48: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/delete.rs crates/core/src/insert.rs crates/core/src/node.rs crates/core/src/split.rs crates/core/src/tree.rs crates/core/src/bulkload.rs crates/core/src/cluster.rs crates/core/src/query/mod.rs crates/core/src/query/bestfirst.rs crates/core/src/query/containment.rs crates/core/src/query/dfs.rs crates/core/src/query/incremental.rs crates/core/src/query/join.rs crates/core/src/query/tests.rs crates/core/src/scan.rs crates/core/src/stats.rs crates/core/src/treestats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/delete.rs:
crates/core/src/insert.rs:
crates/core/src/node.rs:
crates/core/src/split.rs:
crates/core/src/tree.rs:
crates/core/src/bulkload.rs:
crates/core/src/cluster.rs:
crates/core/src/query/mod.rs:
crates/core/src/query/bestfirst.rs:
crates/core/src/query/containment.rs:
crates/core/src/query/dfs.rs:
crates/core/src/query/incremental.rs:
crates/core/src/query/join.rs:
crates/core/src/query/tests.rs:
crates/core/src/scan.rs:
crates/core/src/stats.rs:
crates/core/src/treestats.rs:
