/root/repo/target/release/deps/integration_similarity-78684b65cf4a8323.d: crates/bench/../../tests/integration_similarity.rs

/root/repo/target/release/deps/integration_similarity-78684b65cf4a8323: crates/bench/../../tests/integration_similarity.rs

crates/bench/../../tests/integration_similarity.rs:
