/root/repo/target/release/deps/sig_ops-c11272b3d3ee0fc7.d: crates/bench/benches/sig_ops.rs Cargo.toml

/root/repo/target/release/deps/libsig_ops-c11272b3d3ee0fc7.rmeta: crates/bench/benches/sig_ops.rs Cargo.toml

crates/bench/benches/sig_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
