/root/repo/target/release/deps/sg_minhash-c571f0e5a1cda7a1.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/release/deps/libsg_minhash-c571f0e5a1cda7a1.rlib: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/release/deps/libsg_minhash-c571f0e5a1cda7a1.rmeta: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
