/root/repo/target/release/deps/sg_bench-29632a8a15f54de0.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/sg_bench-29632a8a15f54de0: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
