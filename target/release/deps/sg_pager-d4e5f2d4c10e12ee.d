/root/repo/target/release/deps/sg_pager-d4e5f2d4c10e12ee.d: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/release/deps/libsg_pager-d4e5f2d4c10e12ee.rlib: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/release/deps/libsg_pager-d4e5f2d4c10e12ee.rmeta: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

crates/pager/src/lib.rs:
crates/pager/src/buffer.rs:
crates/pager/src/stats.rs:
crates/pager/src/store.rs:
