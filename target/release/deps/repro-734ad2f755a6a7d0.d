/root/repo/target/release/deps/repro-734ad2f755a6a7d0.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-734ad2f755a6a7d0: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
