/root/repo/target/release/deps/sg_inverted-44a2ced844195e0a.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

/root/repo/target/release/deps/libsg_inverted-44a2ced844195e0a.rlib: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

/root/repo/target/release/deps/libsg_inverted-44a2ced844195e0a.rmeta: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
