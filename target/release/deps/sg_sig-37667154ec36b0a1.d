/root/repo/target/release/deps/sg_sig-37667154ec36b0a1.d: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs crates/sig/src/proptests.rs

/root/repo/target/release/deps/sg_sig-37667154ec36b0a1: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs crates/sig/src/proptests.rs

crates/sig/src/lib.rs:
crates/sig/src/codec.rs:
crates/sig/src/metric.rs:
crates/sig/src/signature.rs:
crates/sig/src/vocab.rs:
crates/sig/src/proptests.rs:
