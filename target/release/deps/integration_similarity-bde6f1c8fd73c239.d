/root/repo/target/release/deps/integration_similarity-bde6f1c8fd73c239.d: crates/bench/../../tests/integration_similarity.rs Cargo.toml

/root/repo/target/release/deps/libintegration_similarity-bde6f1c8fd73c239.rmeta: crates/bench/../../tests/integration_similarity.rs Cargo.toml

crates/bench/../../tests/integration_similarity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
