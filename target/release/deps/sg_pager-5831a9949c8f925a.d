/root/repo/target/release/deps/sg_pager-5831a9949c8f925a.d: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

/root/repo/target/release/deps/sg_pager-5831a9949c8f925a: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs

crates/pager/src/lib.rs:
crates/pager/src/buffer.rs:
crates/pager/src/stats.rs:
crates/pager/src/store.rs:
