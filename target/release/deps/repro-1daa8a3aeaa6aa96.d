/root/repo/target/release/deps/repro-1daa8a3aeaa6aa96.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-1daa8a3aeaa6aa96: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
