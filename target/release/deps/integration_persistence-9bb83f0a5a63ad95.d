/root/repo/target/release/deps/integration_persistence-9bb83f0a5a63ad95.d: crates/bench/../../tests/integration_persistence.rs

/root/repo/target/release/deps/integration_persistence-9bb83f0a5a63ad95: crates/bench/../../tests/integration_persistence.rs

crates/bench/../../tests/integration_persistence.rs:
