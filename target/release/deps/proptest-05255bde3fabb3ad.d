/root/repo/target/release/deps/proptest-05255bde3fabb3ad.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/release/deps/libproptest-05255bde3fabb3ad.rmeta: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs Cargo.toml

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/prelude.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
