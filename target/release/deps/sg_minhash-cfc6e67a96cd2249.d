/root/repo/target/release/deps/sg_minhash-cfc6e67a96cd2249.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

/root/repo/target/release/deps/sg_minhash-cfc6e67a96cd2249: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
