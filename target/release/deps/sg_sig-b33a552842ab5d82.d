/root/repo/target/release/deps/sg_sig-b33a552842ab5d82.d: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs crates/sig/src/proptests.rs Cargo.toml

/root/repo/target/release/deps/libsg_sig-b33a552842ab5d82.rmeta: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs crates/sig/src/proptests.rs Cargo.toml

crates/sig/src/lib.rs:
crates/sig/src/codec.rs:
crates/sig/src/metric.rs:
crates/sig/src/signature.rs:
crates/sig/src/vocab.rs:
crates/sig/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
