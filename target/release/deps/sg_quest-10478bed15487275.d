/root/repo/target/release/deps/sg_quest-10478bed15487275.d: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs

/root/repo/target/release/deps/libsg_quest-10478bed15487275.rlib: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs

/root/repo/target/release/deps/libsg_quest-10478bed15487275.rmeta: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs

crates/quest/src/lib.rs:
crates/quest/src/basket.rs:
crates/quest/src/census.rs:
crates/quest/src/dist.rs:
crates/quest/src/perturb.rs:
