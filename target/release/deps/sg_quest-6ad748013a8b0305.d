/root/repo/target/release/deps/sg_quest-6ad748013a8b0305.d: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs

/root/repo/target/release/deps/sg_quest-6ad748013a8b0305: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs

crates/quest/src/lib.rs:
crates/quest/src/basket.rs:
crates/quest/src/census.rs:
crates/quest/src/dist.rs:
crates/quest/src/perturb.rs:
