/root/repo/target/release/deps/integration_census-fd77d3735f99f079.d: crates/bench/../../tests/integration_census.rs

/root/repo/target/release/deps/integration_census-fd77d3735f99f079: crates/bench/../../tests/integration_census.rs

crates/bench/../../tests/integration_census.rs:
