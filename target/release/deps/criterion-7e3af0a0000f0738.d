/root/repo/target/release/deps/criterion-7e3af0a0000f0738.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-7e3af0a0000f0738.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
