/root/repo/target/release/deps/repro-3c93f038a27ae4ef.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/release/deps/librepro-3c93f038a27ae4ef.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
