/root/repo/target/release/deps/sg_table-8f43a0d6fcdf9534.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs Cargo.toml

/root/repo/target/release/deps/libsg_table-8f43a0d6fcdf9534.rmeta: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs Cargo.toml

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
