/root/repo/target/release/deps/rand-3fe78253e9de1379.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-3fe78253e9de1379.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
