/root/repo/target/release/deps/parking_lot-63f669443262042b.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-63f669443262042b: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
