/root/repo/target/release/deps/proptest_indexes-a5374a107916892f.d: crates/bench/../../tests/proptest_indexes.rs

/root/repo/target/release/deps/proptest_indexes-a5374a107916892f: crates/bench/../../tests/proptest_indexes.rs

crates/bench/../../tests/proptest_indexes.rs:
