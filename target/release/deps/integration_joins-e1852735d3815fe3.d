/root/repo/target/release/deps/integration_joins-e1852735d3815fe3.d: crates/bench/../../tests/integration_joins.rs Cargo.toml

/root/repo/target/release/deps/libintegration_joins-e1852735d3815fe3.rmeta: crates/bench/../../tests/integration_joins.rs Cargo.toml

crates/bench/../../tests/integration_joins.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
