/root/repo/target/release/deps/calibrate-b04cb38047232448.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-b04cb38047232448: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
