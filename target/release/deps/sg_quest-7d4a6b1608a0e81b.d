/root/repo/target/release/deps/sg_quest-7d4a6b1608a0e81b.d: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs Cargo.toml

/root/repo/target/release/deps/libsg_quest-7d4a6b1608a0e81b.rmeta: crates/quest/src/lib.rs crates/quest/src/basket.rs crates/quest/src/census.rs crates/quest/src/dist.rs crates/quest/src/perturb.rs Cargo.toml

crates/quest/src/lib.rs:
crates/quest/src/basket.rs:
crates/quest/src/census.rs:
crates/quest/src/dist.rs:
crates/quest/src/perturb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
