/root/repo/target/release/deps/sg_inverted-b2ebb98aac21916d.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs Cargo.toml

/root/repo/target/release/deps/libsg_inverted-b2ebb98aac21916d.rmeta: crates/inverted/src/lib.rs crates/inverted/src/postings.rs Cargo.toml

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
