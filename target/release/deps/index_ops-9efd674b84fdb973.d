/root/repo/target/release/deps/index_ops-9efd674b84fdb973.d: crates/bench/benches/index_ops.rs

/root/repo/target/release/deps/index_ops-9efd674b84fdb973: crates/bench/benches/index_ops.rs

crates/bench/benches/index_ops.rs:
