/root/repo/target/release/deps/sg_table-ecc780c549ae51fd.d: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs Cargo.toml

/root/repo/target/release/deps/libsg_table-ecc780c549ae51fd.rmeta: crates/sgtable/src/lib.rs crates/sgtable/src/build.rs crates/sgtable/src/search.rs Cargo.toml

crates/sgtable/src/lib.rs:
crates/sgtable/src/build.rs:
crates/sgtable/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
