/root/repo/target/release/deps/sg_sig-beb0188f377aa282.d: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs Cargo.toml

/root/repo/target/release/deps/libsg_sig-beb0188f377aa282.rmeta: crates/sig/src/lib.rs crates/sig/src/codec.rs crates/sig/src/metric.rs crates/sig/src/signature.rs crates/sig/src/vocab.rs Cargo.toml

crates/sig/src/lib.rs:
crates/sig/src/codec.rs:
crates/sig/src/metric.rs:
crates/sig/src/signature.rs:
crates/sig/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
