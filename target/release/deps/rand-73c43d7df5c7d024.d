/root/repo/target/release/deps/rand-73c43d7df5c7d024.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-73c43d7df5c7d024.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
