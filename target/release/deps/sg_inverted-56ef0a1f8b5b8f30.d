/root/repo/target/release/deps/sg_inverted-56ef0a1f8b5b8f30.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs crates/inverted/src/proptests.rs Cargo.toml

/root/repo/target/release/deps/libsg_inverted-56ef0a1f8b5b8f30.rmeta: crates/inverted/src/lib.rs crates/inverted/src/postings.rs crates/inverted/src/proptests.rs Cargo.toml

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
crates/inverted/src/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
