/root/repo/target/release/deps/proptest-5946ad14d592cf39.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-5946ad14d592cf39.rlib: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-5946ad14d592cf39.rmeta: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/prelude.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
