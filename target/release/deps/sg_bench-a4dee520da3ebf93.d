/root/repo/target/release/deps/sg_bench-a4dee520da3ebf93.d: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/release/deps/libsg_bench-a4dee520da3ebf93.rmeta: crates/bench/src/lib.rs crates/bench/src/measure.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/measure.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
