/root/repo/target/release/deps/index_ops-6e2f2f5db207d9f4.d: crates/bench/benches/index_ops.rs

/root/repo/target/release/deps/index_ops-6e2f2f5db207d9f4: crates/bench/benches/index_ops.rs

crates/bench/benches/index_ops.rs:
