/root/repo/target/release/deps/calibrate-592417c8e635c202.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/release/deps/libcalibrate-592417c8e635c202.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
