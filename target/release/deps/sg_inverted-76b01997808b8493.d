/root/repo/target/release/deps/sg_inverted-76b01997808b8493.d: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

/root/repo/target/release/deps/libsg_inverted-76b01997808b8493.rlib: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

/root/repo/target/release/deps/libsg_inverted-76b01997808b8493.rmeta: crates/inverted/src/lib.rs crates/inverted/src/postings.rs

crates/inverted/src/lib.rs:
crates/inverted/src/postings.rs:
