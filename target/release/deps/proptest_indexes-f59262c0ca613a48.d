/root/repo/target/release/deps/proptest_indexes-f59262c0ca613a48.d: crates/bench/../../tests/proptest_indexes.rs Cargo.toml

/root/repo/target/release/deps/libproptest_indexes-f59262c0ca613a48.rmeta: crates/bench/../../tests/proptest_indexes.rs Cargo.toml

crates/bench/../../tests/proptest_indexes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
