/root/repo/target/release/deps/criterion-63ca50354802a01f.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-63ca50354802a01f.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
