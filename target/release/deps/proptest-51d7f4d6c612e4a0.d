/root/repo/target/release/deps/proptest-51d7f4d6c612e4a0.d: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-51d7f4d6c612e4a0: shims/proptest/src/lib.rs shims/proptest/src/arbitrary.rs shims/proptest/src/collection.rs shims/proptest/src/prelude.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/arbitrary.rs:
shims/proptest/src/collection.rs:
shims/proptest/src/prelude.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
