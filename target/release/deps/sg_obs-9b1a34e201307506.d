/root/repo/target/release/deps/sg_obs-9b1a34e201307506.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libsg_obs-9b1a34e201307506.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

/root/repo/target/release/deps/libsg_obs-9b1a34e201307506.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
