/root/repo/target/release/deps/integration_persistence-2d54ab7aff3c4234.d: crates/bench/../../tests/integration_persistence.rs Cargo.toml

/root/repo/target/release/deps/libintegration_persistence-2d54ab7aff3c4234.rmeta: crates/bench/../../tests/integration_persistence.rs Cargo.toml

crates/bench/../../tests/integration_persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
