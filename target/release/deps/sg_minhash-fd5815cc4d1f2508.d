/root/repo/target/release/deps/sg_minhash-fd5815cc4d1f2508.d: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs Cargo.toml

/root/repo/target/release/deps/libsg_minhash-fd5815cc4d1f2508.rmeta: crates/minhash/src/lib.rs crates/minhash/src/hasher.rs crates/minhash/src/lsh.rs Cargo.toml

crates/minhash/src/lib.rs:
crates/minhash/src/hasher.rs:
crates/minhash/src/lsh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
