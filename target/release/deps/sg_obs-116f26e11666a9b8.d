/root/repo/target/release/deps/sg_obs-116f26e11666a9b8.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libsg_obs-116f26e11666a9b8.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/trace.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
