/root/repo/target/release/deps/integration_joins-4e2a0ec1623fa22f.d: crates/bench/../../tests/integration_joins.rs

/root/repo/target/release/deps/integration_joins-4e2a0ec1623fa22f: crates/bench/../../tests/integration_joins.rs

crates/bench/../../tests/integration_joins.rs:
