/root/repo/target/release/deps/parking_lot-a88683dc7e260bdf.d: shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-a88683dc7e260bdf.rmeta: shims/parking_lot/src/lib.rs Cargo.toml

shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
