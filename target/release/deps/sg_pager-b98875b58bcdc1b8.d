/root/repo/target/release/deps/sg_pager-b98875b58bcdc1b8.d: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs Cargo.toml

/root/repo/target/release/deps/libsg_pager-b98875b58bcdc1b8.rmeta: crates/pager/src/lib.rs crates/pager/src/buffer.rs crates/pager/src/stats.rs crates/pager/src/store.rs Cargo.toml

crates/pager/src/lib.rs:
crates/pager/src/buffer.rs:
crates/pager/src/stats.rs:
crates/pager/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
