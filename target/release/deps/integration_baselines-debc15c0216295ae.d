/root/repo/target/release/deps/integration_baselines-debc15c0216295ae.d: crates/bench/../../tests/integration_baselines.rs Cargo.toml

/root/repo/target/release/deps/libintegration_baselines-debc15c0216295ae.rmeta: crates/bench/../../tests/integration_baselines.rs Cargo.toml

crates/bench/../../tests/integration_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
