/root/repo/target/release/examples/dedup_join-efc90b7b89d22a58.d: crates/bench/../../examples/dedup_join.rs

/root/repo/target/release/examples/dedup_join-efc90b7b89d22a58: crates/bench/../../examples/dedup_join.rs

crates/bench/../../examples/dedup_join.rs:
