/root/repo/target/release/examples/dynamic_updates-62c715183d8b7b5d.d: crates/bench/../../examples/dynamic_updates.rs

/root/repo/target/release/examples/dynamic_updates-62c715183d8b7b5d: crates/bench/../../examples/dynamic_updates.rs

crates/bench/../../examples/dynamic_updates.rs:
