/root/repo/target/release/examples/dynamic_updates-53330ef22dfd10d3.d: crates/bench/../../examples/dynamic_updates.rs Cargo.toml

/root/repo/target/release/examples/libdynamic_updates-53330ef22dfd10d3.rmeta: crates/bench/../../examples/dynamic_updates.rs Cargo.toml

crates/bench/../../examples/dynamic_updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
