/root/repo/target/release/examples/quickstart-9c82857369b98c10.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-9c82857369b98c10.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
