/root/repo/target/release/examples/recommend-13a3ace73a01b056.d: crates/bench/../../examples/recommend.rs Cargo.toml

/root/repo/target/release/examples/librecommend-13a3ace73a01b056.rmeta: crates/bench/../../examples/recommend.rs Cargo.toml

crates/bench/../../examples/recommend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
