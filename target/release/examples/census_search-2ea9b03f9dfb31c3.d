/root/repo/target/release/examples/census_search-2ea9b03f9dfb31c3.d: crates/bench/../../examples/census_search.rs

/root/repo/target/release/examples/census_search-2ea9b03f9dfb31c3: crates/bench/../../examples/census_search.rs

crates/bench/../../examples/census_search.rs:
