/root/repo/target/release/examples/recommend-94ed7d7839dc46b4.d: crates/bench/../../examples/recommend.rs

/root/repo/target/release/examples/recommend-94ed7d7839dc46b4: crates/bench/../../examples/recommend.rs

crates/bench/../../examples/recommend.rs:
