/root/repo/target/release/examples/dedup_join-c5786f96fcd8da8f.d: crates/bench/../../examples/dedup_join.rs Cargo.toml

/root/repo/target/release/examples/libdedup_join-c5786f96fcd8da8f.rmeta: crates/bench/../../examples/dedup_join.rs Cargo.toml

crates/bench/../../examples/dedup_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
