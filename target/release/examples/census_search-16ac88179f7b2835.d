/root/repo/target/release/examples/census_search-16ac88179f7b2835.d: crates/bench/../../examples/census_search.rs Cargo.toml

/root/repo/target/release/examples/libcensus_search-16ac88179f7b2835.rmeta: crates/bench/../../examples/census_search.rs Cargo.toml

crates/bench/../../examples/census_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
