/root/repo/target/release/examples/quickstart-b1c2fa8ca003f748.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b1c2fa8ca003f748: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
