//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the tiny API subset it actually uses: [`Mutex`] and [`RwLock`]
//! with `parking_lot`-style guards (no `Result`, no poisoning in the
//! signatures). Poisoned std locks are recovered transparently — a
//! panicking holder does not corrupt the plain data these locks protect.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
