//! Offline stand-in for a memory-mapping crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the tiny API subset `sg-store` actually needs: a *shared*,
//! read-write mapping of a file range ([`Region`]) with an explicit
//! durability barrier ([`Region::flush`]). On Linux and macOS this is a
//! real `mmap(MAP_SHARED)` through raw syscall declarations (std already
//! links libc, so no external crate is required); elsewhere — and under
//! Miri — it degrades to a heap buffer that is read from the file at map
//! time and written back on flush, which preserves the API but not the
//! shared-across-processes semantics.
//!
//! # Safety contract
//!
//! [`Region`] hands out raw pointers and interior-mutable copy helpers
//! ([`Region::read_into`] / [`Region::write_at`]) instead of slices. The
//! caller must guarantee that a given byte range is never written while
//! another thread may read it — `sg-store` upholds this with its
//! copy-on-write page discipline (a physical page is written only while
//! it is private to the writer, never after it becomes visible to a
//! published snapshot).

use std::fs::File;
use std::io;

/// Alignment required of `offset` in [`Region::map`] and honoured by
/// [`Region::flush_range`]. 4 KiB is the page size on every platform the
/// workspace targets.
pub const MAP_ALIGN: u64 = 4096;

// ---------------------------------------------------------------------------
// Real mmap (Linux / macOS, not under Miri)
// ---------------------------------------------------------------------------

#[cfg(all(any(target_os = "linux", target_os = "macos"), not(miri)))]
mod imp {
    use super::MAP_ALIGN;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    use std::ffi::{c_int, c_void};

    // std links libc on these targets, so declaring the three syscall
    // wrappers directly avoids any external crate.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn msync(addr: *mut c_void, len: usize, flags: c_int) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_SHARED: c_int = 1;
    #[cfg(target_os = "linux")]
    const MS_SYNC: c_int = 4;
    #[cfg(target_os = "macos")]
    const MS_SYNC: c_int = 0x0010;

    /// A shared, read-write mapping of a file range.
    pub struct Region {
        base: *mut u8,
        len: usize,
    }

    // The region is a raw chunk of process memory; all access goes
    // through the copy helpers whose synchronization is the caller's
    // responsibility (see the crate-level safety contract).
    unsafe impl Send for Region {}
    unsafe impl Sync for Region {}

    impl Region {
        pub fn map(file: &File, offset: u64, len: usize) -> io::Result<Region> {
            assert!(len > 0, "cannot map an empty region");
            assert_eq!(
                offset % MAP_ALIGN,
                0,
                "map offset must be {MAP_ALIGN}-aligned"
            );
            let base = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    offset as i64,
                )
            };
            if base as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Region {
                base: base as *mut u8,
                len,
            })
        }

        pub fn len(&self) -> usize {
            self.len
        }

        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// # Safety
        ///
        /// `off + buf.len()` must not exceed the mapped length, and no
        /// concurrent writer may overlap the copied range.
        pub unsafe fn read_into(&self, off: usize, buf: &mut [u8]) {
            debug_assert!(off + buf.len() <= self.len);
            std::ptr::copy_nonoverlapping(self.base.add(off), buf.as_mut_ptr(), buf.len());
        }

        /// # Safety
        ///
        /// `off + data.len()` must not exceed the mapped length, and no
        /// concurrent reader or writer may overlap the copied range.
        pub unsafe fn write_at(&self, off: usize, data: &[u8]) {
            debug_assert!(off + data.len() <= self.len);
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.base.add(off), data.len());
        }

        pub fn flush(&self) -> io::Result<()> {
            self.flush_range(0, self.len)
        }

        pub fn flush_range(&self, off: usize, len: usize) -> io::Result<()> {
            if len == 0 {
                return Ok(());
            }
            // msync requires a page-aligned address: widen the range down
            // to the containing alignment boundary.
            let start = off - off % MAP_ALIGN as usize;
            let end = (off + len).min(self.len);
            let rc = unsafe { msync(self.base.add(start) as *mut _, end - start, MS_SYNC) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Drop for Region {
        fn drop(&mut self) {
            unsafe {
                munmap(self.base as *mut _, self.len);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Portable fallback (other targets, Miri)
// ---------------------------------------------------------------------------

#[cfg(not(all(any(target_os = "linux", target_os = "macos"), not(miri))))]
mod imp {
    use super::MAP_ALIGN;
    use std::cell::UnsafeCell;
    use std::fs::File;
    use std::io::{self, Read, Seek, SeekFrom, Write};
    use std::sync::Mutex;

    /// Heap-backed stand-in: the file range is read once at map time and
    /// written back on [`Region::flush`]. Not shared across processes.
    pub struct Region {
        buf: UnsafeCell<Vec<u8>>,
        file: Mutex<File>,
        offset: u64,
        len: usize,
    }

    unsafe impl Send for Region {}
    unsafe impl Sync for Region {}

    impl Region {
        pub fn map(file: &File, offset: u64, len: usize) -> io::Result<Region> {
            assert!(len > 0, "cannot map an empty region");
            assert_eq!(
                offset % MAP_ALIGN,
                0,
                "map offset must be {MAP_ALIGN}-aligned"
            );
            let mut f = file.try_clone()?;
            let mut buf = vec![0u8; len];
            f.seek(SeekFrom::Start(offset))?;
            let mut read = 0;
            while read < len {
                match f.read(&mut buf[read..])? {
                    0 => break, // mapping may extend past EOF after set_len
                    n => read += n,
                }
            }
            Ok(Region {
                buf: UnsafeCell::new(buf),
                file: Mutex::new(f),
                offset,
                len,
            })
        }

        pub fn len(&self) -> usize {
            self.len
        }

        pub unsafe fn read_into(&self, off: usize, buf: &mut [u8]) {
            let src = &*self.buf.get();
            buf.copy_from_slice(&src[off..off + buf.len()]);
        }

        pub unsafe fn write_at(&self, off: usize, data: &[u8]) {
            let dst = &mut *self.buf.get();
            dst[off..off + data.len()].copy_from_slice(data);
        }

        pub fn flush(&self) -> io::Result<()> {
            self.flush_range(0, self.len)
        }

        pub fn flush_range(&self, off: usize, len: usize) -> io::Result<()> {
            if len == 0 {
                return Ok(());
            }
            let end = (off + len).min(self.len);
            let mut f = self.file.lock().unwrap();
            f.seek(SeekFrom::Start(self.offset + off as u64))?;
            let buf = unsafe { &*self.buf.get() };
            f.write_all(&buf[off..end])?;
            f.sync_data()
        }
    }
}

pub use imp::Region;

/// Maps `len` bytes of `file` starting at `offset` (must be
/// [`MAP_ALIGN`]-aligned) as a shared read-write region.
pub fn map_shared(file: &File, offset: u64, len: usize) -> io::Result<Region> {
    Region::map(file, offset, len)
}
