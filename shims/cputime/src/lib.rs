//! Offline stand-in for a CPU-clock crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the tiny API subset `sg-obs` actually needs: the calling
//! thread's consumed CPU time ([`self_cpu_ns`]) and a handle to *another*
//! thread's CPU clock ([`ThreadClock`]) that a sampling profiler can read
//! cross-thread. On Linux and macOS this is `clock_gettime` over
//! `CLOCK_THREAD_CPUTIME_ID` (own thread) and the clock id obtained from
//! `pthread_getcpuclockid` (other threads), through raw syscall
//! declarations — std already links libc, so no external crate is
//! required. Elsewhere, and under Miri, every reading is `0` and
//! [`supported`] reports `false`; callers degrade to wall-clock-only
//! accounting.

/// Whether real per-thread CPU clocks are available on this target.
pub fn supported() -> bool {
    imp::SUPPORTED
}

/// CPU time consumed by the *calling* thread, in nanoseconds. Monotone
/// per thread; `0` on unsupported targets.
#[inline]
pub fn self_cpu_ns() -> u64 {
    imp::self_cpu_ns()
}

/// A handle to one thread's CPU clock, readable from any thread.
///
/// Obtained on the owning thread via [`ThreadClock::for_current_thread`];
/// readings are that thread's cumulative CPU nanoseconds. After the
/// owning thread exits the clock id may become invalid (or, worst case,
/// recycled to a newer thread); [`ThreadClock::cpu_ns`] returns `None`
/// on any read error, which callers treat as "thread gone".
#[derive(Debug, Clone, Copy)]
pub struct ThreadClock(imp::Clock);

impl ThreadClock {
    /// The calling thread's CPU clock.
    pub fn for_current_thread() -> ThreadClock {
        ThreadClock(imp::current_thread_clock())
    }

    /// The clock's cumulative CPU nanoseconds, or `None` when the clock
    /// cannot be read (unsupported target, owning thread exited).
    #[inline]
    pub fn cpu_ns(&self) -> Option<u64> {
        imp::clock_ns(self.0)
    }
}

// ---------------------------------------------------------------------------
// Real clocks (Linux / macOS, not under Miri)
// ---------------------------------------------------------------------------

#[cfg(all(any(target_os = "linux", target_os = "macos"), not(miri)))]
mod imp {
    use std::ffi::{c_int, c_long};

    pub(crate) const SUPPORTED: bool = true;

    #[repr(C)]
    struct Timespec {
        tv_sec: c_long,
        tv_nsec: c_long,
    }

    // std links libc on these targets, so declaring the two wrappers
    // directly avoids any external crate. `pthread_t` is an unsigned
    // long on Linux and a pointer on macOS; both fit in usize.
    extern "C" {
        fn clock_gettime(clock_id: c_int, tp: *mut Timespec) -> c_int;
        fn pthread_self() -> usize;
        fn pthread_getcpuclockid(thread: usize, clock_id: *mut c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    const CLOCK_THREAD_CPUTIME_ID: c_int = 3;
    #[cfg(target_os = "macos")]
    const CLOCK_THREAD_CPUTIME_ID: c_int = 16;

    pub(crate) type Clock = c_int;

    fn read(clock: c_int) -> Option<u64> {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, writable Timespec; clock_gettime
        // writes it or fails, with no other effects.
        let rc = unsafe { clock_gettime(clock, &mut ts) };
        if rc != 0 {
            return None;
        }
        Some(ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64)
    }

    #[inline]
    pub(crate) fn self_cpu_ns() -> u64 {
        read(CLOCK_THREAD_CPUTIME_ID).unwrap_or(0)
    }

    pub(crate) fn current_thread_clock() -> Clock {
        let mut id: c_int = CLOCK_THREAD_CPUTIME_ID;
        // SAFETY: pthread_self() is the live calling thread; `id` is a
        // valid out-pointer. On failure keep the self-clock fallback,
        // which is correct for same-thread reads.
        let rc = unsafe { pthread_getcpuclockid(pthread_self(), &mut id) };
        if rc != 0 {
            id = CLOCK_THREAD_CPUTIME_ID;
        }
        id
    }

    #[inline]
    pub(crate) fn clock_ns(clock: Clock) -> Option<u64> {
        read(clock)
    }
}

// ---------------------------------------------------------------------------
// Fallback: no thread CPU clocks
// ---------------------------------------------------------------------------

#[cfg(not(all(any(target_os = "linux", target_os = "macos"), not(miri))))]
mod imp {
    pub(crate) const SUPPORTED: bool = false;

    pub(crate) type Clock = ();

    #[inline]
    pub(crate) fn self_cpu_ns() -> u64 {
        0
    }

    pub(crate) fn current_thread_clock() -> Clock {}

    #[inline]
    pub(crate) fn clock_ns(_clock: Clock) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_cpu_advances_under_work() {
        if !supported() {
            assert_eq!(self_cpu_ns(), 0);
            return;
        }
        let before = self_cpu_ns();
        // Burn a little CPU; volatile-ish accumulation the optimizer
        // cannot drop entirely.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let after = self_cpu_ns();
        assert!(after >= before);
        assert!(after > 0, "thread CPU clock should be nonzero after work");
    }

    #[test]
    fn cross_thread_clock_reads_other_threads_time() {
        if !supported() {
            assert!(ThreadClock::for_current_thread().cpu_ns().is_none());
            return;
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            tx.send(ThreadClock::for_current_thread()).unwrap();
            let mut acc = 0u64;
            for i in 0..2_000_000u64 {
                acc = acc.wrapping_mul(2862933555777941757).wrapping_add(i);
            }
            std::hint::black_box(acc);
            done_rx.recv().unwrap();
        });
        let clock = rx.recv().unwrap();
        // Readable from this (different) thread while the owner lives.
        let r1 = clock.cpu_ns();
        assert!(r1.is_some(), "cross-thread clock read failed");
        done_tx.send(()).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn monotone_readings() {
        if !supported() {
            return;
        }
        let clock = ThreadClock::for_current_thread();
        let mut last = 0;
        for _ in 0..100 {
            let now = clock.cpu_ns().unwrap();
            assert!(now >= last);
            last = now;
        }
    }
}
