//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the subset of proptest it uses: the [`strategy::Strategy`]
//! trait over ranges / [`strategy::Just`] / tuples / `prop_map` /
//! `prop_oneof!` / [`collection::vec`] / [`arbitrary::any`], and the
//! [`proptest!`] macro driving each case with a deterministic per-test
//! RNG. There is no shrinking: a failing case panics with the regular
//! assert message, and re-running the test replays the identical
//! sequence (seeds derive from the test name, not from entropy).

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Upstream-style alias so `prop::collection::vec(..)` works.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream surface the workspace uses: an optional leading
/// `#![proptest_config(..)]`, then one or more `#[test] fn name(arg in
/// strategy, ...) { body }` items. Each test runs `config.cases` cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)
     $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Chooses uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, bool)> {
        (0u32..100, any::<bool>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1usize..12, f in 0.4f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..12).contains(&y));
            prop_assert!((0.4..1.0).contains(&f));
        }

        #[test]
        fn vec_len_and_map(v in prop::collection::vec(0u8..60, 0..80),
                           w in prop::collection::vec(0u32..64, 8),
                           s in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v.len() < 80);
            prop_assert_eq!(w.len(), 8);
            prop_assert!(s % 2 == 0 && s < 20);
        }

        #[test]
        fn oneof_and_tuples(choice in prop_oneof![Just(1u8), Just(5u8), Just(9u8)],
                            pair in arb_pair()) {
            prop_assert!(choice == 1 || choice == 5 || choice == 9);
            prop_assert!(pair.0 < 100);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let strat = crate::collection::vec(0u32..1000, 0..20);
            let mut rng = crate::test_runner::TestRng::deterministic("fixed");
            (0..10)
                .map(|_| crate::strategy::Strategy::generate(&strat, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
