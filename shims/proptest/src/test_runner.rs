//! Test-run configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each `proptest!` test executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite quick while
        // still exercising the generators broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG driving strategy generation for one test function.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) inner: StdRng,
}

impl TestRng {
    /// Seeds the RNG from the test name so every run replays the same
    /// case sequence (there is no shrinking to rediscover a failure).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}
