//! `any::<T>()` — default strategies per type.

use std::marker::PhantomData;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a default full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The default strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.inner.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.inner.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite unit-interval values; enough for the workspace's use.
        rng.inner.gen()
    }
}
