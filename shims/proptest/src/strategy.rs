//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Erases a strategy's concrete type (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies of one value type.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.inner.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
