//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification accepted by [`vec`]: an exact size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `elem` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi_exclusive {
            self.size.lo
        } else {
            rng.inner.gen_range(self.size.lo..self.size.hi_exclusive)
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
