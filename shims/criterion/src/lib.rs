//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the benchmark API subset it uses: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Measurement is a straightforward wall-clock sampler: calibrate
//! iterations so each sample lasts ~2 ms, collect `sample_size` samples,
//! and report min/median/mean per iteration. No statistical regression
//! analysis, no HTML reports — but the medians are real and stable enough
//! to compare builds (e.g. the sg-obs disabled-recorder overhead check).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the sampler treats all variants
/// the same (setup always runs outside the timed section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Top-level benchmark driver; holds the default sample count.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(label: &str, sample_size: usize, f: F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut s = bencher.samples;
    if s.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    s.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
    let min = s[0];
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        s.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collects per-iteration timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f` in a tight loop; each recorded sample is the mean
    /// nanoseconds per iteration over a calibrated batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate per-iteration cost.
        let warm = Instant::now();
        let mut iters: u64 = 0;
        while warm.elapsed() < Duration::from_millis(5) && iters < 1_000_000 {
            black_box(f());
            iters += 1;
        }
        let per_iter_ns = (warm.elapsed().as_nanos() as f64 / iters as f64).max(0.1);
        // Aim for ~2 ms per sample so Instant overhead is negligible.
        let n = ((2_000_000.0 / per_iter_ns).ceil() as u64).clamp(1, 10_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            self.samples.push(t.elapsed().as_nanos() as f64 / n as f64);
        }
    }

    /// Times `routine` only, constructing its input with `setup` outside
    /// the timed section each iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Estimate routine cost (setup excluded from estimate too).
        let mut spent = Duration::ZERO;
        let mut runs: u32 = 0;
        while spent < Duration::from_millis(4) && runs < 200 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            runs += 1;
        }
        let per_run_ns = (spent.as_nanos() as f64 / runs as f64).max(0.1);
        // Setup can dominate the routine; keep batches modest.
        let n = ((1_000_000.0 / per_run_ns).ceil() as u64).clamp(1, 10_000) as usize;
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                total += t.elapsed();
            }
            self.samples.push(total.as_nanos() as f64 / n as f64);
        }
    }
}

/// Declares a benchmark group function, optionally with a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_function(format!("fmt-{}", 7), |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }
}
