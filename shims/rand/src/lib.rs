//! Offline stand-in for the `rand` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the API subset its generators use: [`Rng::gen`],
//! [`Rng::gen_range`] (half-open and inclusive ranges), [`Rng::gen_bool`],
//! and [`SeedableRng::seed_from_u64`] on [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only requires
//! determinism for a given seed, not upstream-identical sequences.

use std::ops::{Range, RangeInclusive};

/// The raw entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] from uniform random bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`'s uniform bit stream.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by 128-bit widening multiply (bias is
/// below 2⁻⁶⁴ per draw — irrelevant for workload generation).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the uniform bit stream.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0..=5usize);
            assert!(y <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_range_and_spread() {
        let mut r = StdRng::seed_from_u64(1);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo += 1;
            }
        }
        assert!((4_000..6_000).contains(&lo), "heavily skewed: {lo}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.1)).count();
        assert!((500..1_500).contains(&hits), "p=0.1 gave {hits}/10000");
    }

    #[test]
    fn works_through_mut_ref_impl_rng() {
        fn take(rng: &mut impl Rng) -> u32 {
            rng.gen_range(0..10u32)
        }
        let mut r = StdRng::seed_from_u64(3);
        // Mirrors the generators' pattern of passing `&mut rng` onward.
        let x = take(&mut r);
        assert!(x < 10);
    }
}
