//! Cross-crate integration: generator → SG-tree / SG-table / scan must
//! agree exactly on every similarity query type over realistic workloads.

use sg_bench::workloads::{basket_instance, build_tree, pairs_of};
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use sg_tree::SplitPolicy;

fn dists(ns: &[sg_tree::Neighbor]) -> Vec<f64> {
    ns.iter().map(|n| n.dist).collect()
}

#[test]
fn three_indexes_agree_on_knn() {
    let (inst, queries) = basket_instance(10, 6, 5_000, 20, SplitPolicy::AvLink);
    let m = Metric::hamming();
    for q in &queries {
        for k in [1usize, 10, 50] {
            let (tree, _) = inst.tree.knn(q, k, &m);
            let (table, _) = inst.table.knn(q, k, &m);
            let (scan, _) = inst.scan.knn(q, k, &m);
            assert_eq!(dists(&tree), dists(&scan), "tree vs scan, k={k}");
            assert_eq!(dists(&table), dists(&scan), "table vs scan, k={k}");
        }
    }
}

#[test]
fn three_indexes_agree_on_range() {
    let (inst, queries) = basket_instance(10, 6, 4_000, 15, SplitPolicy::AvLink);
    let m = Metric::hamming();
    for q in &queries {
        for eps in [0.0, 4.0, 9.0] {
            let (tree, _) = inst.tree.range(q, eps, &m);
            let (table, _) = inst.table.range(q, eps, &m);
            let (scan, _) = inst.scan.range(q, eps, &m);
            let ids = |v: &[sg_tree::Neighbor]| {
                let mut ids: Vec<u64> = v.iter().map(|n| n.tid).collect();
                ids.sort_unstable();
                ids
            };
            assert_eq!(ids(&tree), ids(&scan), "tree vs scan, eps={eps}");
            assert_eq!(ids(&table), ids(&scan), "table vs scan, eps={eps}");
        }
    }
}

#[test]
fn containment_queries_agree_with_scan() {
    let (inst, queries) = basket_instance(10, 6, 4_000, 10, SplitPolicy::AvLink);
    for q in &queries {
        // Use a shortened query so supersets exist.
        let short = Signature::from_iter(inst.nbits, q.ones().take(2));
        let (tree, _) = inst.tree.containing(&short);
        let (scan, _) = inst.scan.containing(&short);
        assert_eq!(tree, scan);
        let (tree, _) = inst.tree.contained_in(q);
        let (scan, _) = inst.scan.contained_in(q);
        assert_eq!(tree, scan);
    }
}

#[test]
fn tree_prunes_on_paper_scale_clusters() {
    // On clustered data the SG-tree must beat a full scan substantially —
    // the paper's headline claim at small scale.
    let (inst, queries) = basket_instance(30, 18, 20_000, 25, SplitPolicy::AvLink);
    let m = Metric::hamming();
    let mut compared = 0u64;
    for q in &queries {
        let (_, stats) = inst.tree.nn(q, &m);
        compared += stats.data_compared;
    }
    let frac = compared as f64 / (20_000.0 * queries.len() as f64);
    assert!(frac < 0.5, "tree compared {:.1}% of the data", frac * 100.0);
}

#[test]
fn all_split_policies_remain_exact_on_generator_data() {
    let pool = PatternPool::new(BasketParams::standard(12, 6), 5);
    let ds = pool.dataset(3_000, 5);
    let data = pairs_of(&ds);
    let m = Metric::hamming();
    let queries: Vec<Signature> = pool
        .queries(10, 5)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    // Ground truth from brute force over `data`.
    let brute = |q: &Signature, k: usize| -> Vec<f64> {
        let mut d: Vec<f64> = data.iter().map(|(_, s)| m.dist(q, s)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.truncate(k);
        d
    };
    for policy in [
        SplitPolicy::Quadratic,
        SplitPolicy::AvLink,
        SplitPolicy::MinLink,
    ] {
        let cfg = sg_tree::TreeConfig::new(ds.n_items).split(policy);
        let (tree, _) = build_tree(ds.n_items, &data, Some(cfg));
        tree.validate();
        for q in &queries {
            let (got, _) = tree.knn(q, 7, &m);
            assert_eq!(dists(&got), brute(q, 7), "{policy:?}");
        }
    }
}

#[test]
fn similarity_join_small_eps_contains_self_pairs() {
    let (inst, _) = basket_instance(8, 4, 800, 1, SplitPolicy::AvLink);
    let (inst2, _) = basket_instance(8, 4, 800, 1, SplitPolicy::AvLink);
    // Identical datasets: the join at eps=0 must contain every (t, t') with
    // equal signatures — in particular the diagonal.
    let m = Metric::hamming();
    let (pairs, _) = inst.tree.similarity_join(&inst2.tree, 0.0, &m);
    let diagonal = pairs.iter().filter(|p| p.left == p.right).count();
    assert_eq!(diagonal as u64, inst.tree.len());
    assert!(pairs.iter().all(|p| p.dist == 0.0));
}
