//! Categorical-data integration: the CENSUS-shaped generator feeding the
//! SG-tree, with the fixed-dimensionality bound and non-Hamming metrics.

use sg_bench::workloads::census_instance;
use sg_sig::{Metric, MetricKind, Signature};
use sg_tree::SplitPolicy;

#[test]
fn census_tree_is_exact_under_fixed_dim_bound() {
    let (inst, queries) = census_instance(5_000, 15, SplitPolicy::AvLink);
    let relaxed = Metric::hamming();
    let strict = Metric::with_fixed_dim(MetricKind::Hamming, 36);
    for q in &queries {
        let (want, _) = inst.scan.knn(q, 10, &relaxed);
        for m in [&relaxed, &strict] {
            let (got, _) = inst.tree.knn(q, 10, m);
            let gd: Vec<f64> = got.iter().map(|n| n.dist).collect();
            let wd: Vec<f64> = want.iter().map(|n| n.dist).collect();
            assert_eq!(gd, wd);
        }
    }
}

#[test]
fn fixed_dim_bound_never_compares_more() {
    let (inst, queries) = census_instance(8_000, 20, SplitPolicy::AvLink);
    let relaxed = Metric::hamming();
    let strict = Metric::with_fixed_dim(MetricKind::Hamming, 36);
    let mut r = 0u64;
    let mut s = 0u64;
    for q in &queries {
        r += inst.tree.knn(q, 1, &relaxed).1.data_compared;
        s += inst.tree.knn(q, 1, &strict).1.data_compared;
    }
    assert!(s <= r, "strict bound compared {s} vs relaxed {r}");
    // And on this fixed-size data it should be a real improvement, not a
    // wash: every relaxed bound is 0 whenever the entry covers the query.
    assert!(
        s < r,
        "strict bound should strictly help on categorical data"
    );
}

#[test]
fn jaccard_knn_on_census_matches_scan() {
    let (inst, queries) = census_instance(4_000, 10, SplitPolicy::AvLink);
    let m = Metric::jaccard();
    for q in &queries {
        let (got, _) = inst.tree.knn(q, 5, &m);
        let (want, _) = inst.scan.knn(q, 5, &m);
        let gd: Vec<f64> = got.iter().map(|n| n.dist).collect();
        let wd: Vec<f64> = want.iter().map(|n| n.dist).collect();
        assert_eq!(gd, wd);
    }
}

#[test]
fn dice_range_on_census_matches_scan() {
    let (inst, queries) = census_instance(3_000, 8, SplitPolicy::AvLink);
    let m = Metric::new(MetricKind::Dice);
    for q in &queries {
        let (got, _) = inst.tree.range(q, 0.4, &m);
        let (want, _) = inst.scan.range(q, 0.4, &m);
        assert_eq!(got.len(), want.len());
    }
}

#[test]
fn categorical_point_queries_via_containment() {
    let (inst, _) = census_instance(3_000, 1, SplitPolicy::AvLink);
    // Pick an indexed tuple; all tuples sharing its first 5 attribute
    // values must be found by a containment query on the partial tuple.
    let (tid, full) = &inst.data[42];
    let partial = Signature::from_iter(inst.nbits, full.ones().take(5));
    let (hits, _) = inst.tree.containing(&partial);
    assert!(hits.contains(tid));
    let (want, _) = inst.scan.containing(&partial);
    assert_eq!(hits, want);
}

#[test]
fn exact_tuple_lookup() {
    let (inst, _) = census_instance(3_000, 1, SplitPolicy::AvLink);
    let (tid, sig) = &inst.data[7];
    let (hits, _) = inst.tree.exact(sig);
    assert!(hits.contains(tid));
}
