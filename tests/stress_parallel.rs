//! Concurrency stress: many reader threads hammering one shared
//! [`ShardedExecutor`] while an observer samples the metrics registry.
//!
//! Verifies that (a) results under contention are identical to the
//! single-tree answers computed up front, (b) every registered counter is
//! monotone non-decreasing across observer samples, and (c) the pool's
//! queue-depth gauge returns to zero once the storm is over.

use sg_bench::workloads::{build_tree, pairs_of, PAGE_SIZE, POOL_FRAMES, SEED};
use sg_exec::{ExecConfig, Partitioner, QueryOutput, QueryRequest, ShardedExecutor};
use sg_obs::Registry;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use sg_tree::{Neighbor, Tid};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const READERS: usize = 8;
const ROUNDS: usize = 12;

fn workload() -> (Vec<(Tid, Signature)>, Vec<Signature>, u32) {
    let pool = PatternPool::new(BasketParams::standard(8, 4), SEED ^ 0x57E5);
    let ds = pool.dataset(2_000, SEED ^ 0x57E5);
    let queries = pool
        .queries(24, SEED ^ 0xBEEF)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    (pairs_of(&ds), queries, ds.n_items)
}

#[test]
fn readers_see_single_tree_answers_and_counters_stay_monotone() {
    let (data, queries, nbits) = workload();
    let (tree, _) = build_tree(nbits, &data, None);
    let m = Metric::jaccard();

    // Ground truth, computed single-threaded on the unsharded tree.
    let expected_knn: Vec<Vec<Neighbor>> = queries.iter().map(|q| tree.knn(q, 10, &m).0).collect();
    let expected_containing: Vec<Vec<Tid>> = queries.iter().map(|q| tree.containing(q).0).collect();

    let exec = Arc::new(
        ShardedExecutor::build(
            nbits,
            &data,
            &ExecConfig {
                shards: 4,
                threads: 4,
                partitioner: Partitioner::SignatureClustered,
                page_size: PAGE_SIZE,
                pool_frames: POOL_FRAMES,
                tree: None,
            },
        )
        .unwrap(),
    );
    let registry = Registry::new();
    let obs = exec.register_obs(&registry, "exec");

    let queries = Arc::new(queries);
    let expected_knn = Arc::new(expected_knn);
    let expected_containing = Arc::new(expected_containing);
    let done = Arc::new(AtomicBool::new(false));

    // Observer: sample every counter repeatedly; monotonicity checked after.
    let sampler = {
        let registry_snapshot = move || {
            let snap = registry.snapshot();
            (
                snap.counter("exec.queries"),
                snap.counter("exec.shard0.visits")
                    + snap.counter("exec.shard1.visits")
                    + snap.counter("exec.shard2.visits")
                    + snap.counter("exec.shard3.visits"),
            )
        };
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut samples = Vec::new();
            while !done.load(Ordering::Relaxed) {
                samples.push(registry_snapshot());
                std::thread::yield_now();
            }
            samples.push(registry_snapshot());
            samples
        })
    };

    std::thread::scope(|s| {
        for reader in 0..READERS {
            let exec = Arc::clone(&exec);
            let queries = Arc::clone(&queries);
            let expected_knn = Arc::clone(&expected_knn);
            let expected_containing = Arc::clone(&expected_containing);
            s.spawn(move || {
                for round in 0..ROUNDS {
                    if (reader + round) % 3 == 0 {
                        // Batch path: all queries at once, mixed types.
                        let batch: Vec<QueryRequest> = queries
                            .iter()
                            .enumerate()
                            .map(|(i, q)| {
                                if i % 2 == 0 {
                                    QueryRequest::Knn {
                                        q: q.clone(),
                                        k: 10,
                                        metric: m,
                                    }
                                } else {
                                    QueryRequest::Containing { q: q.clone() }
                                }
                            })
                            .collect();
                        for (i, r) in exec.execute_batch(batch).into_iter().enumerate() {
                            let r = r.expect("batch query must succeed");
                            match r.output {
                                QueryOutput::Neighbors(ns) => assert_eq!(ns, expected_knn[i]),
                                QueryOutput::Tids(ts) => assert_eq!(ts, expected_containing[i]),
                            }
                        }
                    } else {
                        // Single-query path, striped over the query set.
                        for (i, q) in queries.iter().enumerate() {
                            if (i + reader) % 2 == 0 {
                                let (got, _) = exec.knn(q, 10, &m);
                                assert_eq!(got, expected_knn[i], "reader {reader} round {round}");
                            } else {
                                let (got, _) = exec.containing(q);
                                assert_eq!(got, expected_containing[i]);
                            }
                        }
                    }
                }
            });
        }
    });
    done.store(true, Ordering::Relaxed);
    let samples = sampler.join().unwrap();

    // Counters are cumulative: every sample dominates the previous one.
    for pair in samples.windows(2) {
        assert!(pair[1].0 >= pair[0].0, "exec.queries went backwards");
        assert!(
            pair[1].1 >= pair[0].1,
            "shard visit counters went backwards"
        );
    }
    let (final_queries, final_visits) = *samples.last().unwrap();
    // 8 readers × 12 rounds × 24 queries, batch or not, all recorded.
    assert_eq!(final_queries, (READERS * ROUNDS * queries.len()) as u64);
    assert!(final_visits > 0);
    // The storm is over: no queued work remains.
    assert_eq!(obs.queue_depth.get(), 0);
    // Batches were exercised.
    assert!(obs.batches.get() > 0);
    assert_eq!(obs.query_ns.snapshot().count, final_queries);
}

/// Cross-shard pruning must never change answers under contention: run the
/// same k-NN repeatedly from many threads and require one unique answer.
#[test]
fn repeated_concurrent_knn_is_deterministic() {
    let (data, queries, nbits) = workload();
    let m = Metric::hamming();
    let exec = Arc::new(
        ShardedExecutor::build(
            nbits,
            &data,
            &ExecConfig {
                shards: 3,
                ..ExecConfig::default()
            },
        )
        .unwrap(),
    );
    let q = Arc::new(queries[0].clone());
    let answers: Vec<Vec<Neighbor>> = std::thread::scope(|s| {
        (0..READERS)
            .map(|_| {
                let exec = Arc::clone(&exec);
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut last = Vec::new();
                    for _ in 0..ROUNDS {
                        last = exec.knn(&q, 15, &m).0;
                    }
                    last
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for a in &answers[1..] {
        assert_eq!(*a, answers[0]);
    }
}
