//! Differential testing: every index structure in the workspace against a
//! from-scratch linear-scan oracle, over seeded random basket workloads.
//!
//! The oracle is deliberately *not* [`sg_tree::ScanIndex`] — it is a
//! ~20-line reference implementation written here, so a bug shared by the
//! indexes and the scan baseline cannot cancel out.
//!
//! Every backend is driven through `dyn` [`SetIndex`] — the unified
//! query/mutation trait — so the differential harness is one loop over
//! trait objects, not a copy of itself per index type. Exactness
//! contracts verified:
//! * `SgTree` and `ShardedExecutor` (all shard counts and partitioners)
//!   return the oracle answer **byte for byte** — distances, tids, and
//!   order — for k-NN, range, containment, and exact-match queries.
//! * `SgTable` and `InvertedIndex` return the oracle's distance vector for
//!   k-NN and the oracle's exact answer set for range; queries outside a
//!   backend's contract surface as [`SgError::Unsupported`], never wrong
//!   answers.
//! * `MinHashLsh` is sound (every reported distance is real) and its
//!   recall on close neighbors stays above a measured floor.

use sg_bench::workloads::{build_tree, pairs_of, PAGE_SIZE, POOL_FRAMES, SEED};
use sg_exec::{DurabilityConfig, ExecConfig, Partitioner, ShardedExecutor, StorageMode, WriteOp};
use sg_inverted::InvertedIndex;
use sg_minhash::{LshParams, MinHashLsh};
use sg_pager::MemStore;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use sg_table::{SgTable, TableParams};
use sg_tree::{
    Neighbor, QueryOptions, QueryOutput, QueryRequest, SetIndex, SgError, SgResult, Tid,
};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// The oracle: a plain linear scan over the raw data.
// ---------------------------------------------------------------------------

fn oracle_knn(data: &[(Tid, Signature)], q: &Signature, k: usize, m: &Metric) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = data
        .iter()
        .map(|(tid, s)| Neighbor {
            tid: *tid,
            dist: m.dist(q, s),
        })
        .collect();
    all.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.tid.cmp(&b.tid)));
    all.truncate(k);
    all
}

fn oracle_range(data: &[(Tid, Signature)], q: &Signature, eps: f64, m: &Metric) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = data
        .iter()
        .filter_map(|(tid, s)| {
            let d = m.dist(q, s);
            (d <= eps).then_some(Neighbor { tid: *tid, dist: d })
        })
        .collect();
    all.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.tid.cmp(&b.tid)));
    all
}

fn oracle_containing(data: &[(Tid, Signature)], q: &Signature) -> Vec<Tid> {
    data.iter()
        .filter(|(_, s)| s.contains(q))
        .map(|(tid, _)| *tid)
        .collect()
}

fn oracle_exact(data: &[(Tid, Signature)], q: &Signature) -> Vec<Tid> {
    data.iter()
        .filter(|(_, s)| s == q)
        .map(|(tid, _)| *tid)
        .collect()
}

fn dists(ns: &[Neighbor]) -> Vec<f64> {
    ns.iter().map(|n| n.dist).collect()
}

/// Seeded basket workload: `n` transactions plus `n_queries` queries drawn
/// from the same pattern pool, so queries resemble (but rarely equal) data.
fn workload(n: usize, n_queries: usize) -> (Vec<(Tid, Signature)>, Vec<Signature>, u32) {
    let pool = PatternPool::new(BasketParams::standard(8, 4), SEED ^ 0xD1FF);
    let ds = pool.dataset(n, SEED ^ 0xD1FF);
    let queries = pool
        .queries(n_queries, SEED ^ 0xFACE)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    (pairs_of(&ds), queries, ds.n_items)
}

fn metrics() -> Vec<Metric> {
    vec![Metric::hamming(), Metric::jaccard()]
}

// ---------------------------------------------------------------------------
// The dyn SetIndex harness: every backend behind one trait object.
// ---------------------------------------------------------------------------

/// Builds every workspace backend over `data` as a boxed [`SetIndex`].
fn backends(data: &[(Tid, Signature)], nbits: u32) -> Vec<Box<dyn SetIndex>> {
    let (tree, _) = build_tree(nbits, data, None);
    let exec = ShardedExecutor::build(
        nbits,
        data,
        &ExecConfig {
            shards: 3,
            page_size: PAGE_SIZE,
            pool_frames: POOL_FRAMES,
            ..ExecConfig::default()
        },
    )
    .unwrap();
    let table = SgTable::build(
        Arc::new(MemStore::new(PAGE_SIZE)),
        nbits,
        &TableParams {
            k_signatures: 10,
            activation: 2,
            critical_mass: 0.15,
            pool_frames: POOL_FRAMES,
        },
        data,
    );
    let inv = InvertedIndex::build(Arc::new(MemStore::new(PAGE_SIZE)), nbits, POOL_FRAMES, data);
    let lsh = MinHashLsh::build(nbits, LshParams::default(), data);
    vec![
        Box::new(tree),
        Box::new(exec),
        Box::new(table),
        Box::new(inv),
        Box::new(lsh),
    ]
}

/// Issues one request through the trait object and unwraps a neighbor list.
fn neighbors_via(idx: &dyn SetIndex, req: &QueryRequest) -> SgResult<Vec<Neighbor>> {
    match idx.query(req, &QueryOptions::default())?.output {
        QueryOutput::Neighbors(ns) => Ok(ns),
        other => panic!("{}: expected neighbors, got {other:?}", idx.name()),
    }
}

/// Issues one request through the trait object and unwraps a tid list.
fn tids_via(idx: &dyn SetIndex, req: &QueryRequest) -> SgResult<Vec<Tid>> {
    match idx.query(req, &QueryOptions::default())?.output {
        QueryOutput::Tids(ts) => Ok(ts),
        other => panic!("{}: expected tids, got {other:?}", idx.name()),
    }
}

/// One loop, five backends: each answers the unified requests within its
/// contract (byte-exact, distance-exact, or sound-approximate), and
/// anything outside the contract is a structured `Unsupported` error.
#[test]
fn all_backends_match_oracle_through_dyn_set_index() {
    let (data, queries, nbits) = workload(3_000, 15);
    let m = Metric::hamming();
    let by_tid: std::collections::HashMap<Tid, &Signature> =
        data.iter().map(|(t, s)| (*t, s)).collect();
    for idx in backends(&data, nbits) {
        let idx: &dyn SetIndex = idx.as_ref();
        let name = idx.name();
        assert_eq!(idx.len(), data.len() as u64, "{name}: len");
        assert_eq!(idx.nbits(), nbits, "{name}: nbits");
        assert!(!idx.is_empty(), "{name}: is_empty");
        for q in &queries {
            let knn = QueryRequest::Knn {
                q: q.clone(),
                k: 10,
                metric: m,
            };
            let range = QueryRequest::Range {
                q: q.clone(),
                eps: 3.0,
                metric: m,
            };
            let truth_knn = oracle_knn(&data, q, 10, &m);
            let truth_range = oracle_range(&data, q, 3.0, &m);
            match name {
                // Exact backends: byte-identical, order included.
                "sg-tree" | "sg-exec" => {
                    assert_eq!(neighbors_via(idx, &knn).unwrap(), truth_knn, "{name}: knn");
                    assert_eq!(
                        neighbors_via(idx, &range).unwrap(),
                        truth_range,
                        "{name}: range"
                    );
                }
                // Distance-exact backends: the distance vector matches;
                // tie order at the k-th boundary is their own.
                "sg-table" | "inverted" => {
                    assert_eq!(
                        dists(&neighbors_via(idx, &knn).unwrap()),
                        dists(&truth_knn),
                        "{name}: knn distances"
                    );
                    let mut got = neighbors_via(idx, &range).unwrap();
                    got.sort_by(|a, b| {
                        a.dist.partial_cmp(&b.dist).unwrap().then(a.tid.cmp(&b.tid))
                    });
                    assert_eq!(got, truth_range, "{name}: range");
                }
                // Approximate backend: sound (no fabricated distances, no
                // out-of-radius answers), completeness not guaranteed.
                "minhash" => {
                    for n in neighbors_via(idx, &range).unwrap() {
                        assert_eq!(n.dist, m.dist(q, by_tid[&n.tid]), "{name}: fabricated");
                        assert!(n.dist <= 3.0, "{name}: out of radius");
                    }
                }
                other => panic!("unknown backend `{other}` joined the harness"),
            }
            // Containment queries: exact where supported, a structured
            // error (never a wrong answer) where not.
            let containing = QueryRequest::Containing { q: q.clone() };
            let exact = QueryRequest::Exact { q: q.clone() };
            match name {
                "sg-tree" | "sg-exec" | "inverted" => {
                    assert_eq!(
                        tids_via(idx, &containing).unwrap(),
                        oracle_containing(&data, q),
                        "{name}: containing"
                    );
                    assert_eq!(
                        tids_via(idx, &exact).unwrap(),
                        oracle_exact(&data, q),
                        "{name}: exact"
                    );
                }
                _ => {
                    assert!(
                        matches!(tids_via(idx, &containing), Err(SgError::Unsupported(_))),
                        "{name}: containment must be Unsupported"
                    );
                }
            }
        }
        // A fractional metric is outside the table/inverted contract: it
        // must refuse, not return Hamming-scored distances.
        let jaccard_knn = QueryRequest::Knn {
            q: queries[0].clone(),
            k: 5,
            metric: Metric::jaccard(),
        };
        match name {
            "sg-table" | "inverted" => assert!(
                matches!(
                    neighbors_via(idx, &jaccard_knn),
                    Err(SgError::Unsupported(_))
                ),
                "{name}: jaccard k-NN must be Unsupported"
            ),
            _ => assert!(neighbors_via(idx, &jaccard_knn).is_ok(), "{name}: jaccard"),
        }
        // A wrong-universe query is Invalid everywhere, uniformly.
        let wrong = QueryRequest::Exact {
            q: Signature::from_items(nbits + 64, &[1]),
        };
        assert!(
            matches!(
                idx.query(&wrong, &QueryOptions::default()),
                Err(SgError::Invalid(_))
            ),
            "{name}: universe mismatch must be Invalid"
        );
    }
}

/// Mutation through the trait: dynamic backends apply inserts and deletes
/// and the new state is immediately queryable; build-only backends refuse
/// with `Unsupported` and stay untouched.
#[test]
fn dyn_set_index_mutation_contract() {
    let (data, _, nbits) = workload(500, 1);
    let fresh_tid: Tid = 9_999_999;
    let fresh_sig = Signature::from_items(nbits, &[1, 5, 9]);
    for mut idx in backends(&data, nbits) {
        let name = idx.name();
        let before = idx.len();
        let exact = QueryRequest::Exact {
            q: fresh_sig.clone(),
        };
        match idx.insert(fresh_tid, &fresh_sig) {
            Ok(()) => {
                assert_eq!(idx.len(), before + 1, "{name}: len after insert");
                // Backends that can answer exact-match must now find it.
                if let Ok(ts) = tids_via(idx.as_ref(), &exact) {
                    assert!(ts.contains(&fresh_tid), "{name}: inserted tid missing");
                }
                match idx.delete(fresh_tid, &fresh_sig) {
                    Ok(applied) => {
                        assert!(applied, "{name}: delete of a present tid");
                        assert_eq!(idx.len(), before, "{name}: len after delete");
                    }
                    Err(SgError::Unsupported(_)) => {
                        // Append-only (the SG-table): the insert stays.
                        assert_eq!(idx.len(), before + 1, "{name}: append-only len");
                    }
                    Err(e) => panic!("{name}: delete failed unexpectedly: {e}"),
                }
            }
            Err(SgError::Unsupported(_)) => {
                assert_eq!(idx.len(), before, "{name}: build-only len must not move");
            }
            Err(e) => panic!("{name}: insert failed unexpectedly: {e}"),
        }
        // A wrong-universe insert is Invalid (not Unsupported, not a panic)
        // on every backend that accepts inserts at all.
        let bad = Signature::from_items(nbits + 64, &[2]);
        assert!(
            matches!(
                idx.insert(fresh_tid + 1, &bad),
                Err(SgError::Invalid(_)) | Err(SgError::Unsupported(_))
            ),
            "{name}: wrong-universe insert must be refused"
        );
    }
}

// ---------------------------------------------------------------------------
// SgTree: byte-identical to the oracle.
// ---------------------------------------------------------------------------

#[test]
fn tree_matches_oracle_byte_for_byte() {
    let (data, queries, nbits) = workload(3_000, 25);
    let (tree, _) = build_tree(nbits, &data, None);
    for m in &metrics() {
        for q in &queries {
            let (got, _) = tree.knn(q, 10, m);
            assert_eq!(got, oracle_knn(&data, q, 10, m), "knn {m:?}");
            let eps = oracle_knn(&data, q, 10, m).last().unwrap().dist;
            let (got, _) = tree.range(q, eps, m);
            assert_eq!(got, oracle_range(&data, q, eps, m), "range {m:?}");
        }
    }
    for q in &queries {
        let (got, _) = tree.containing(q);
        assert_eq!(got, oracle_containing(&data, q));
        let (got, _) = tree.exact(q);
        assert_eq!(got, oracle_exact(&data, q));
    }
    // Data points must find themselves at distance zero.
    for (tid, s) in data.iter().step_by(271) {
        let (got, _) = tree.knn(s, 1, &Metric::jaccard());
        assert_eq!(got[0].dist, 0.0);
        let (ex, _) = tree.exact(s);
        assert!(ex.contains(tid));
    }
}

// ---------------------------------------------------------------------------
// ShardedExecutor: byte-identical to both the oracle and the single tree,
// for every shard count × partitioner combination.
// ---------------------------------------------------------------------------

#[test]
fn sharded_executor_matches_single_tree_byte_for_byte() {
    let (data, queries, nbits) = workload(3_000, 20);
    let (tree, _) = build_tree(nbits, &data, None);
    let m = Metric::jaccard();
    for partitioner in [Partitioner::RoundRobin, Partitioner::SignatureClustered] {
        for shards in [1usize, 3, 4] {
            let exec = ShardedExecutor::build(
                nbits,
                &data,
                &ExecConfig {
                    shards,
                    partitioner,
                    page_size: PAGE_SIZE,
                    pool_frames: POOL_FRAMES,
                    ..ExecConfig::default()
                },
            )
            .unwrap();
            assert_eq!(exec.len(), data.len() as u64);
            for q in &queries {
                let (single, _) = tree.knn(q, 10, &m);
                let (sharded, stats) = exec.knn(q, 10, &m);
                assert_eq!(
                    sharded, single,
                    "knn differs at shards={shards} {partitioner:?}"
                );
                assert_eq!(stats.per_shard.len(), shards);
                assert_eq!(sharded, oracle_knn(&data, q, 10, &m));

                let eps = single.last().unwrap().dist;
                let (single_r, _) = tree.range(q, eps, &m);
                let (sharded_r, _) = exec.range(q, eps, &m);
                assert_eq!(sharded_r, single_r, "range differs at shards={shards}");

                let (single_c, _) = tree.containing(q);
                let (sharded_c, _) = exec.containing(q);
                assert_eq!(sharded_c, single_c, "containing differs at shards={shards}");

                let (single_e, _) = tree.exact(q);
                let (sharded_e, _) = exec.exact(q);
                assert_eq!(sharded_e, single_e, "exact differs at shards={shards}");
            }
        }
    }
}

#[test]
fn sharded_batch_matches_sequential_answers() {
    let (data, queries, nbits) = workload(2_000, 16);
    let m = Metric::hamming();
    let exec = ShardedExecutor::build(
        nbits,
        &data,
        &ExecConfig {
            shards: 4,
            ..ExecConfig::default()
        },
    )
    .unwrap();
    let batch: Vec<QueryRequest> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| match i % 4 {
            0 => QueryRequest::Knn {
                q: q.clone(),
                k: 8,
                metric: m,
            },
            1 => QueryRequest::Range {
                q: q.clone(),
                eps: 3.0,
                metric: m,
            },
            2 => QueryRequest::Containing { q: q.clone() },
            _ => QueryRequest::Exact { q: q.clone() },
        })
        .collect();
    let results = exec.execute_batch(batch);
    assert_eq!(results.len(), queries.len());
    for (i, (q, r)) in queries.iter().zip(&results).enumerate() {
        let r = r.as_ref().expect("batch query must succeed");
        match (i % 4, &r.output) {
            (0, QueryOutput::Neighbors(ns)) => assert_eq!(*ns, oracle_knn(&data, q, 8, &m)),
            (1, QueryOutput::Neighbors(ns)) => assert_eq!(*ns, oracle_range(&data, q, 3.0, &m)),
            (2, QueryOutput::Tids(ts)) => assert_eq!(*ts, oracle_containing(&data, q)),
            (3, QueryOutput::Tids(ts)) => assert_eq!(*ts, oracle_exact(&data, q)),
            (_, out) => panic!("query {i} returned mismatched output kind {out:?}"),
        }
        assert_eq!(r.per_shard.len(), 4);
    }
}

// ---------------------------------------------------------------------------
// Kernel variants: every compiled-in visit kernel (scalar, unrolled, SIMD)
// must produce the oracle answer byte for byte — distances, tids, order —
// through both the single tree and the sharded executor. The scalar
// baseline is captured first, then each variant is forced in-process and
// must reproduce it exactly.
// ---------------------------------------------------------------------------

#[test]
fn every_kernel_variant_answers_byte_for_byte() {
    use sg_sig::kernels::{self, KernelKind};

    let (data, queries, nbits) = workload(2_000, 12);
    let (tree, _) = build_tree(nbits, &data, None);
    let exec = ShardedExecutor::build(
        nbits,
        &data,
        &ExecConfig {
            shards: 3,
            page_size: PAGE_SIZE,
            pool_frames: POOL_FRAMES,
            ..ExecConfig::default()
        },
    )
    .unwrap();

    // Baseline answers under the reference kernel.
    kernels::force(KernelKind::Scalar);
    struct Baseline {
        knn: Vec<Neighbor>,
        range: Vec<Neighbor>,
        containing: Vec<Tid>,
        exact: Vec<Tid>,
    }
    let eps_of = |knn: &[Neighbor]| knn.last().map_or(0.0, |n| n.dist);
    let baselines: Vec<Vec<Baseline>> = metrics()
        .iter()
        .map(|m| {
            queries
                .iter()
                .map(|q| {
                    let knn = oracle_knn(&data, q, 10, m);
                    let range = oracle_range(&data, q, eps_of(&knn), m);
                    Baseline {
                        knn,
                        range,
                        containing: oracle_containing(&data, q),
                        exact: oracle_exact(&data, q),
                    }
                })
                .collect()
        })
        .collect();

    let compiled = kernels::variants();
    assert!(
        compiled.contains(&KernelKind::Scalar) && compiled.contains(&KernelKind::Unrolled),
        "scalar and unrolled must always be compiled in"
    );
    for &kind in compiled {
        kernels::force(kind);
        assert_eq!(kernels::active().kind, kind, "force did not take");
        for (m, per_query) in metrics().iter().zip(&baselines) {
            for (q, truth) in queries.iter().zip(per_query) {
                let (got, _) = tree.knn(q, 10, m);
                assert_eq!(got, truth.knn, "{kind:?} tree knn {m:?}");
                let (got, _) = exec.knn(q, 10, m);
                assert_eq!(got, truth.knn, "{kind:?} exec knn {m:?}");
                let eps = eps_of(&truth.knn);
                let (got, _) = tree.range(q, eps, m);
                assert_eq!(got, truth.range, "{kind:?} tree range {m:?}");
                let (got, _) = exec.range(q, eps, m);
                assert_eq!(got, truth.range, "{kind:?} exec range {m:?}");
            }
        }
        for (q, truth) in queries.iter().zip(&baselines[0]) {
            let (got, _) = tree.containing(q);
            assert_eq!(got, truth.containing, "{kind:?} tree containing");
            let (got, _) = exec.containing(q);
            assert_eq!(got, truth.containing, "{kind:?} exec containing");
            let (got, _) = tree.exact(q);
            assert_eq!(got, truth.exact, "{kind:?} tree exact");
            let (got, _) = exec.exact(q);
            assert_eq!(got, truth.exact, "{kind:?} exec exact");
        }
    }
}

// ---------------------------------------------------------------------------
// Mmap-backed durable executor: byte-identical to the oracle, including
// while checkpoints (meta-page flips + view swaps) and copy-on-write page
// churn are actively running on other threads. This is the snapshot-
// isolation contract: a reader pins an immutable root and never sees a
// half-committed tree.
// ---------------------------------------------------------------------------

#[test]
fn mmap_executor_matches_oracle_during_active_checkpoints() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let (data, queries, nbits) = workload(2_000, 10);
    let dir = std::env::temp_dir().join(format!("sg-diff-mmap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exec = ShardedExecutor::open_durable(
        nbits,
        &ExecConfig {
            shards: 3,
            page_size: PAGE_SIZE,
            pool_frames: POOL_FRAMES,
            ..ExecConfig::default()
        },
        &DurabilityConfig::os_only(&dir).storage(StorageMode::Mmap),
    )
    .unwrap();
    let inserts: Vec<WriteOp> = data
        .iter()
        .map(|(tid, sig)| WriteOp::Insert {
            tid: *tid,
            sig: sig.clone(),
        })
        .collect();
    for ack in exec.write_batch(inserts) {
        ack.expect("insert");
    }

    let m = Metric::jaccard();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Checkpointer thread: commit the page store in a tight loop so
        // reads below overlap meta-page flips and WAL truncations.
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                exec.checkpoint().expect("checkpoint under load");
            }
        });
        // Writer thread: upsert existing tids with their *current*
        // signatures — the logical state never changes (the oracle stays
        // valid) but every batch dirties COW pages, publishes a new
        // mapping, and swaps the snapshot views readers pin.
        s.spawn(|| {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let (tid, sig) = &data[i % data.len()];
                let batch = vec![WriteOp::Upsert {
                    tid: *tid,
                    sig: sig.clone(),
                }];
                for ack in exec.write_batch(batch) {
                    ack.expect("no-op upsert under load");
                }
                i += 1;
            }
        });
        for _ in 0..4 {
            for q in &queries {
                let (got, _) = exec.knn(q, 10, &m);
                assert_eq!(got, oracle_knn(&data, q, 10, &m), "knn under checkpoint");
                let (got, _) = exec.containing(q);
                assert_eq!(
                    got,
                    oracle_containing(&data, q),
                    "containing under checkpoint"
                );
                let (got, _) = exec.exact(q);
                assert_eq!(got, oracle_exact(&data, q), "exact under checkpoint");
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // After a final checkpoint and reopen, the restored index answers
    // byte-identically as well: the committed pages are the whole truth.
    exec.checkpoint().expect("final checkpoint");
    drop(exec);
    let exec = ShardedExecutor::open_durable(
        nbits,
        &ExecConfig {
            shards: 3,
            page_size: PAGE_SIZE,
            pool_frames: POOL_FRAMES,
            ..ExecConfig::default()
        },
        &DurabilityConfig::os_only(&dir).storage(StorageMode::Mmap),
    )
    .unwrap();
    assert_eq!(exec.len(), data.len() as u64);
    for q in &queries {
        let (got, _) = exec.knn(q, 10, &m);
        assert_eq!(got, oracle_knn(&data, q, 10, &m), "knn after reopen");
        let (got, _) = exec.exact(q);
        assert_eq!(got, oracle_exact(&data, q), "exact after reopen");
    }
    drop(exec);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// MinHashLsh: sound, self-recalling, and recall-bounded on close pairs.
// ---------------------------------------------------------------------------

#[test]
fn minhash_is_sound_and_recall_bounded() {
    let (data, queries, nbits) = workload(3_000, 20);
    let lsh = MinHashLsh::build(nbits, LshParams::default(), &data);
    let m = Metric::jaccard();
    let by_tid: std::collections::HashMap<Tid, &Signature> =
        data.iter().map(|(t, s)| (*t, s)).collect();
    // Soundness: every reported distance is the true distance.
    for q in &queries {
        let (got, _) = lsh.range(q, 0.5, &m);
        for n in &got {
            assert_eq!(n.dist, m.dist(q, by_tid[&n.tid]), "fabricated distance");
            assert!(n.dist <= 0.5);
        }
    }
    // Self-recall: a data signature always finds itself at distance 0.
    for (tid, s) in data.iter().step_by(173) {
        let (got, _) = lsh.knn(s, 1, &m);
        assert_eq!(got[0].dist, 0.0, "tid {tid} missed itself");
    }
    // Recall floor on close neighbors (Jaccard ≤ 0.3 ⇒ candidate
    // probability ≥ 97% with the default 16×4 bands): measured recall on
    // this seeded workload is 1.0; assert a safety margin below it.
    let mut close = 0usize;
    let mut found = 0usize;
    for q in &queries {
        let truth = oracle_range(&data, q, 0.3, &m);
        let (got, _) = lsh.range(q, 0.3, &m);
        let got_tids: std::collections::HashSet<Tid> = got.iter().map(|n| n.tid).collect();
        close += truth.len();
        found += truth.iter().filter(|n| got_tids.contains(&n.tid)).count();
    }
    assert!(close > 0, "workload produced no close pairs");
    let recall = found as f64 / close as f64;
    assert!(
        recall >= 0.9,
        "recall {recall:.3} below floor ({found}/{close})"
    );
}
