//! Crash-recovery differential test: a child process
//! (`crash_ingest_child`) streams a deterministic op mix into a durable
//! [`ShardedExecutor`], printing an `ack` line only after each op's WAL
//! fsync. The parent SIGKILLs it at an arbitrary point, reopens the
//! directory in-process, and holds recovery to the **acked-prefix
//! oracle**:
//!
//! * every acked op must be reflected in the recovered state, and
//! * the recovered state must equal `apply(ops[..k])` for exactly one
//!   `k >= acks_read` — a *prefix*: an op logged-but-unacked at the kill
//!   may legitimately survive, but nothing may be applied out of order or
//!   half-applied.
//!
//! Once `k` is pinned, the recovered index must answer queries
//! byte-identically to a fresh in-memory SG-tree built from that prefix,
//! and resuming the suffix `ops[k..]` against the recovered executor must
//! land exactly where an uninterrupted run would have.

use sg_bench::workloads::crash_ops;
use sg_exec::{DurabilityConfig, ExecConfig, Partitioner, ShardedExecutor, StorageMode, WriteOp};
use sg_pager::MemStore;
use sg_sig::{Metric, Signature};
use sg_tree::{SgTree, Tid, TreeConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::sync::Arc;

const NBITS: u32 = 256;
const SHARDS: usize = 3;
const N_OPS: usize = 300;
const SEED: u64 = 0xC8A5_4EC0;

/// The oracle state after applying `ops[..k]` to an empty index.
fn oracle_state(ops: &[WriteOp], k: usize) -> BTreeMap<Tid, Signature> {
    let mut state = BTreeMap::new();
    for op in &ops[..k] {
        match op {
            WriteOp::Insert { tid, sig } | WriteOp::Upsert { tid, sig } => {
                state.insert(*tid, sig.clone());
            }
            WriteOp::Delete { tid } => {
                state.remove(tid);
            }
        }
    }
    state
}

/// Every tid the recovered executor holds, via containment in the
/// all-ones signature (every set is a subset of the full universe).
fn all_tids(exec: &ShardedExecutor) -> Vec<Tid> {
    let universe: Vec<u32> = (0..NBITS).collect();
    let full = Signature::from_items(NBITS, &universe);
    let (mut tids, _) = exec.contained_in(&full);
    tids.sort_unstable();
    tids
}

/// True iff the recovered executor's contents equal the oracle map:
/// same tid set, and each tid's stored signature is byte-equal to the
/// oracle's (checked through exact-match queries).
fn state_matches(exec: &ShardedExecutor, oracle: &BTreeMap<Tid, Signature>) -> bool {
    if all_tids(exec) != oracle.keys().copied().collect::<Vec<_>>() {
        return false;
    }
    oracle
        .iter()
        .all(|(tid, sig)| exec.exact(sig).0.contains(tid))
}

/// Runs the child until `kill_after_acks` ack lines arrive, SIGKILLs it,
/// and returns how many acks were actually read (the pipe may hold a few
/// more than the trigger count — all of them count as acknowledged).
fn run_child_and_kill(
    dir: &std::path::Path,
    kill_after_acks: usize,
    storage: StorageMode,
    ckpt_every: usize,
    seed: u64,
) -> usize {
    let mut child = Command::new(env!("CARGO_BIN_EXE_crash_ingest_child"))
        .args([
            dir.to_str().unwrap(),
            &NBITS.to_string(),
            &SHARDS.to_string(),
            &N_OPS.to_string(),
            &seed.to_string(),
            storage.as_str(),
            &ckpt_every.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn crash_ingest_child");
    let stdout = child.stdout.take().unwrap();
    let mut acks = 0usize;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("child stdout");
        assert!(
            line.starts_with("ack "),
            "unexpected child output: {line:?}"
        );
        acks += 1;
        if acks == kill_after_acks {
            // SIGKILL: no destructors, no WAL truncation, no flush — the
            // on-disk state is whatever the fsyncs left behind.
            child.kill().expect("kill child");
        }
    }
    let _ = child.wait();
    acks
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sg-crash-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn reopen(dir: &std::path::Path, storage: StorageMode) -> ShardedExecutor {
    ShardedExecutor::open_durable(
        NBITS,
        &ExecConfig {
            shards: SHARDS,
            partitioner: Partitioner::RoundRobin,
            ..ExecConfig::default()
        },
        &DurabilityConfig::new(dir).storage(storage),
    )
    .expect("reopen durable executor")
}

#[test]
fn sigkilled_ingest_recovers_exactly_the_acked_prefix() {
    sigkilled_prefix_roundtrip(StorageMode::Heap, "prefix");
}

/// Same acked-prefix oracle, but the shards live in the mmap'd
/// copy-on-write page store: a SIGKILL leaves an arbitrary mix of
/// committed pages and WAL tail, and recovery must still land on
/// exactly one acked prefix.
#[test]
fn sigkilled_mmap_ingest_recovers_exactly_the_acked_prefix() {
    sigkilled_prefix_roundtrip(StorageMode::Mmap, "mmap-prefix");
}

fn sigkilled_prefix_roundtrip(storage: StorageMode, tag: &str) {
    let ops = crash_ops(NBITS, N_OPS, SEED);
    // Three kill points: early (mostly empty WAL), mid-stream, and late
    // (deletes and upserts in the tail are in play).
    for (round, kill_after) in [20usize, 120, 260].into_iter().enumerate() {
        let dir = fresh_dir(&format!("{tag}-{round}"));
        let acked = run_child_and_kill(&dir, kill_after, storage, 0, SEED);
        assert!(acked >= kill_after, "read fewer acks than the trigger");

        let exec = reopen(&dir, storage);
        let report = exec.recovery().expect("durable reopen has a report");
        assert!(
            report.replayed > 0,
            "nothing replayed after {acked} acked ops"
        );

        // Pin k: the unique prefix length whose oracle state matches.
        let k = (acked..=N_OPS.min(acked + 64))
            .find(|&k| state_matches(&exec, &oracle_state(&ops, k)))
            .unwrap_or_else(|| {
                panic!("recovered state matches no acked-prefix oracle (acked={acked})")
            });
        let oracle = oracle_state(&ops, k);
        assert_eq!(exec.len(), oracle.len() as u64);

        // Byte-identical answers: a fresh in-memory SG-tree over the same
        // prefix must agree with the recovered executor on k-NN, range,
        // and containment — distances compared by bit pattern.
        let store = Arc::new(MemStore::new(4096));
        let mut tree = SgTree::create(store, TreeConfig::new(NBITS)).expect("oracle tree");
        for (tid, sig) in &oracle {
            tree.insert(*tid, sig);
        }
        let m = Metric::jaccard();
        for probe in 0..8u64 {
            let q = match ops[probe as usize % ops.len()].signature() {
                Some(sig) => sig.clone(),
                None => continue,
            };
            let (want_knn, _) = tree.knn(&q, 10, &m);
            let (got_knn, _) = exec.knn(&q, 10, &m);
            assert_eq!(want_knn.len(), got_knn.len());
            for (w, g) in want_knn.iter().zip(&got_knn) {
                assert_eq!(w.tid, g.tid, "k-NN tid diverged after recovery");
                assert_eq!(
                    w.dist.to_bits(),
                    g.dist.to_bits(),
                    "k-NN distance not byte-identical after recovery"
                );
            }
            let (mut want_in, _) = tree.containing(&q);
            let (mut got_in, _) = exec.containing(&q);
            want_in.sort_unstable();
            got_in.sort_unstable();
            assert_eq!(want_in, got_in, "containment diverged after recovery");
        }

        // Resume the suffix on the recovered executor: the final state
        // must be exactly where an uninterrupted run would have landed.
        for ack in exec.write_batch(ops[k..].to_vec()) {
            ack.expect("suffix op after recovery");
        }
        assert!(
            state_matches(&exec, &oracle_state(&ops, N_OPS)),
            "resumed run diverged from the uninterrupted oracle"
        );

        drop(exec);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn checkpoint_then_crash_replays_only_the_wal_suffix() {
    let ops = crash_ops(NBITS, N_OPS, SEED ^ 1);
    let dir = fresh_dir("ckpt");

    // Apply a prefix, checkpoint (snapshot + WAL truncate), then more ops
    // without a checkpoint — all in-process, then simulate the crash by
    // dropping the executor without any graceful shutdown.
    let exec = reopen(&dir, StorageMode::Heap);
    for ack in exec.write_batch(ops[..200].to_vec()) {
        ack.expect("prefix op");
    }
    exec.checkpoint().expect("checkpoint");
    for ack in exec.write_batch(ops[200..].to_vec()) {
        ack.expect("suffix op");
    }
    drop(exec);

    let exec = reopen(&dir, StorageMode::Heap);
    let report = exec.recovery().expect("durable reopen has a report");
    // The checkpoint absorbed the prefix: only the post-checkpoint ops
    // travel through the WAL on reopen.
    assert!(
        report.wal_records <= (N_OPS - 200) as u64,
        "checkpoint did not truncate the WAL (wal_records={})",
        report.wal_records
    );
    assert!(
        state_matches(&exec, &oracle_state(&ops, N_OPS)),
        "post-checkpoint recovery lost or duplicated ops"
    );
    drop(exec);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mmap twin of the checkpoint test: after a commit (one meta-page flip
/// per shard) only the WAL tail replays, and the recovered state is
/// byte-exact.
#[test]
fn mmap_checkpoint_then_crash_replays_only_the_wal_suffix() {
    let ops = crash_ops(NBITS, N_OPS, SEED ^ 2);
    let dir = fresh_dir("mmap-ckpt");

    let exec = reopen(&dir, StorageMode::Mmap);
    for ack in exec.write_batch(ops[..200].to_vec()) {
        ack.expect("prefix op");
    }
    exec.checkpoint().expect("checkpoint");
    for ack in exec.write_batch(ops[200..].to_vec()) {
        ack.expect("suffix op");
    }
    drop(exec);

    let exec = reopen(&dir, StorageMode::Mmap);
    let report = exec.recovery().expect("durable reopen has a report");
    assert!(
        report.wal_records <= (N_OPS - 200) as u64,
        "commit did not truncate the WAL (wal_records={})",
        report.wal_records
    );
    assert!(
        report.snapshot_entries > 0,
        "the committed page store restored nothing"
    );
    assert!(
        state_matches(&exec, &oracle_state(&ops, N_OPS)),
        "post-commit recovery lost or duplicated ops"
    );
    drop(exec);
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGKILL aimed at in-flight checkpoints: the child commits the page
/// store after every 8th acked op, so kills at arbitrary ack counts land
/// before, during, and after meta-page flips. Whatever the kill hits,
/// the dual-meta-slot scheme must leave a valid commit behind (the flip
/// is a single CRC'd slot write — a torn one falls back to the previous
/// slot, whose WAL suffix is still intact), and recovery must equal an
/// acked-prefix oracle exactly.
#[test]
fn sigkill_during_mmap_checkpoint_keeps_the_meta_flip_atomic() {
    let ops = crash_ops(NBITS, N_OPS, SEED ^ 3);
    for (round, kill_after) in [17usize, 64, 129, 248].into_iter().enumerate() {
        let dir = fresh_dir(&format!("mmap-flip-{round}"));
        let acked = run_child_and_kill(&dir, kill_after, StorageMode::Mmap, 8, SEED ^ 3);
        assert!(acked >= kill_after, "read fewer acks than the trigger");

        // The open itself is the first assertion: a torn meta slot that
        // decoded as valid would corrupt the tree and fail validation
        // (or panic) here.
        let exec = reopen(&dir, StorageMode::Mmap);
        let k = (acked..=N_OPS.min(acked + 64))
            .find(|&k| state_matches(&exec, &oracle_state(&ops, k)))
            .unwrap_or_else(|| {
                panic!("recovered state matches no acked-prefix oracle (acked={acked})")
            });

        // Resume the suffix: the recovered store must keep working as a
        // write target, not just as a readable artifact.
        for ack in exec.write_batch(ops[k..].to_vec()) {
            ack.expect("suffix op after recovery");
        }
        assert!(
            state_matches(&exec, &oracle_state(&ops, N_OPS)),
            "resumed run diverged from the uninterrupted oracle"
        );
        drop(exec);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
