//! End-to-end tests for the sg-serve network service, over real sockets:
//!
//! * **Differential**: the answer a client reads off the wire is
//!   *byte-identical* (distances compared by `f64::to_bits`) to the answer
//!   a direct [`ShardedExecutor`] call returns, for containment (all three
//!   modes), Hamming range, similarity-threshold, and k-NN queries.
//! * **Backpressure**: a burst exceeding the admission queue gets
//!   `SERVER_BUSY` with a `retry_after_ms` hint, the queue never grows
//!   past its cap, and the server answers normally again afterwards.
//! * **Graceful drain**: shutdown mid-flight completes every admitted
//!   query; the drain report accounts for them.
//! * **Robustness**: oversize and malformed frames produce structured
//!   error frames — never a crash or a hang — and per-request deadlines
//!   produce `DEADLINE_EXCEEDED`.
//! * **Admin**: `/metrics` serves the serve.* counters in Prometheus
//!   text, `/healthz` reports readiness (and `503 draining` mid-drain).
//! * **Tracing**: a client-supplied `trace_id` yields one connected span
//!   tree (serve → exec → core, and → pager for durable writes) in the
//!   flight recorder, served by `/debug/flight`; the slow-query log
//!   captures exactly the requests over threshold.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sg_exec::{DurabilityConfig, ExecConfig, ShardedExecutor};
use sg_obs::{span, Registry};
use sg_serve::{
    read_frame, write_frame, BatchPolicy, Client, ContainmentMode, ErrorCode, MetricName, Response,
    ServeConfig, Server, MAX_FRAME_DEFAULT,
};
use sg_sig::{Metric, Signature};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const NBITS: u32 = 256;
const ROWS: u64 = 3000;
const SEED: u64 = 20030305;

/// Clustered transactions so containment and similarity queries have
/// non-trivial answers.
fn dataset() -> Vec<(u64, Signature)> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..ROWS)
        .map(|tid| {
            let center = rng.gen_range(0..NBITS / 4) * 4;
            let items: Vec<u32> = (0..10)
                .map(|_| (center + rng.gen_range(0..NBITS / 2)) % NBITS)
                .collect();
            (tid, Signature::from_items(NBITS, &items))
        })
        .collect()
}

fn executor(shards: usize) -> Arc<ShardedExecutor> {
    Arc::new(
        ShardedExecutor::build(
            NBITS,
            &dataset(),
            &ExecConfig {
                shards,
                ..ExecConfig::default()
            },
        )
        .unwrap(),
    )
}

fn query_items(i: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(SEED ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..6).map(|_| rng.gen_range(0..NBITS)).collect()
}

#[test]
fn socket_answers_are_byte_identical_to_direct_executor() {
    let exec = executor(4);
    let server = Server::start(
        Arc::clone(&exec),
        Arc::new(Registry::new()),
        ServeConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    for i in 0..20u64 {
        let items = query_items(i);
        let q = Signature::from_items(NBITS, &items);

        // Containment, all three modes.
        for mode in [
            ContainmentMode::Containing,
            ContainmentMode::ContainedIn,
            ContainmentMode::Exact,
        ] {
            let direct = match mode {
                ContainmentMode::Containing => exec.containing(&q).0,
                ContainmentMode::ContainedIn => exec.contained_in(&q).0,
                ContainmentMode::Exact => exec.exact(&q).0,
            };
            match client.containment(mode, &items, None).unwrap() {
                Response::Tids { tids, .. } => assert_eq!(tids, direct, "mode {mode:?}, query {i}"),
                other => panic!("unexpected response: {other:?}"),
            }
        }

        // Hamming range.
        let radius = (i % 8) as f64;
        let direct = exec.range(&q, radius, &Metric::hamming()).0;
        match client.range(&items, radius, None).unwrap() {
            Response::Neighbors { pairs, .. } => {
                assert_eq!(pairs.len(), direct.len(), "range query {i}");
                for (got, want) in pairs.iter().zip(&direct) {
                    assert_eq!(got.0.to_bits(), want.dist.to_bits(), "range query {i}");
                    assert_eq!(got.1, want.tid, "range query {i}");
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }

        // Similarity threshold: the server maps min_sim to eps = 1 - min_sim
        // under the named metric; mirror the same arithmetic here.
        let min_sim = (i % 5) as f64 / 8.0 + 0.375;
        let direct = exec.range(&q, 1.0 - min_sim, &Metric::jaccard()).0;
        match client
            .similarity(&items, min_sim, MetricName::Jaccard, None)
            .unwrap()
        {
            Response::Neighbors { pairs, .. } => {
                assert_eq!(pairs.len(), direct.len(), "similarity query {i}");
                for (got, want) in pairs.iter().zip(&direct) {
                    assert_eq!(got.0.to_bits(), want.dist.to_bits(), "similarity query {i}");
                    assert_eq!(got.1, want.tid, "similarity query {i}");
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }

        // k-NN.
        let k = 1 + (i as usize % 16);
        let direct = exec.knn(&q, k, &Metric::hamming()).0;
        match client
            .knn(&items, k as u64, MetricName::Hamming, None)
            .unwrap()
        {
            Response::Neighbors { pairs, .. } => {
                assert_eq!(pairs.len(), direct.len(), "knn query {i}");
                for (got, want) in pairs.iter().zip(&direct) {
                    assert_eq!(got.0.to_bits(), want.dist.to_bits(), "knn query {i}");
                    assert_eq!(got.1, want.tid, "knn query {i}");
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    drop(client);
    let report = server.join();
    assert_eq!(report.requests, 20 * 6);
    assert_eq!(report.errors, 0);
}

#[test]
fn overload_burst_is_refused_with_backpressure_and_recovers() {
    let exec = executor(2);
    let registry = Arc::new(Registry::new());
    // A tiny admission queue and a long batching window: concurrent
    // senders are guaranteed to hit a full queue while the window is open.
    let server = Server::start(
        exec,
        Arc::clone(&registry),
        ServeConfig {
            conn_workers: 16,
            policy: BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(100),
                queue_cap: 4,
            },
            default_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..12)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut ok = 0u64;
                let mut busy = 0u64;
                for i in 0..6u64 {
                    let items = query_items(t * 100 + i);
                    match client.knn(&items, 5, MetricName::Hamming, None).unwrap() {
                        Response::Neighbors { pairs, .. } => {
                            assert_eq!(pairs.len(), 5);
                            ok += 1;
                        }
                        Response::Error {
                            code: ErrorCode::ServerBusy,
                            retry_after_ms,
                            ..
                        } => {
                            // The backpressure hint must be present and
                            // positive.
                            assert!(retry_after_ms.unwrap_or(0) >= 1);
                            busy += 1;
                        }
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
                (ok, busy)
            })
        })
        .collect();
    let (mut total_ok, mut total_busy) = (0, 0);
    for h in handles {
        let (ok, busy) = h.join().unwrap();
        total_ok += ok;
        total_busy += busy;
    }
    assert!(total_ok > 0, "some queries must get through the burst");
    assert!(total_busy > 0, "the burst must overflow the queue");

    // The bounded queue is the memory guarantee: depth can never exceed
    // the cap, so the rejected requests were never buffered.
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("serve.busy_rejected"), total_busy);

    // Recovery: after the burst the server answers normally.
    let mut client = Client::connect(addr).unwrap();
    match client
        .knn(&query_items(999), 3, MetricName::Hamming, None)
        .unwrap()
    {
        Response::Neighbors { pairs, .. } => assert_eq!(pairs.len(), 3),
        other => panic!("no recovery after burst: {other:?}"),
    }
    drop(client);
    let report = server.join();
    assert_eq!(report.busy_rejected, total_busy);
    assert_eq!(report.errors, 0);
}

#[test]
fn graceful_drain_completes_in_flight_queries() {
    let exec = executor(2);
    // Long batching window so in-flight queries are still pending when
    // shutdown lands.
    let server = Server::start(
        exec,
        Arc::new(Registry::new()),
        ServeConfig {
            policy: BatchPolicy {
                max_batch: 64,
                max_wait: Duration::from_millis(300),
                queue_cap: 64,
            },
            default_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.knn(&query_items(t), 7, MetricName::Hamming, None)
            })
        })
        .collect();

    // Give every thread time to get its request admitted, then drain
    // while the batching window still holds them pending.
    std::thread::sleep(Duration::from_millis(100));
    let report = server.join();

    for h in handles {
        match h.join().unwrap().unwrap() {
            Response::Neighbors { pairs, .. } => assert_eq!(pairs.len(), 7),
            other => panic!("in-flight query lost in drain: {other:?}"),
        }
    }
    assert_eq!(report.requests, 8);
    assert_eq!(report.timeouts, 0);
    assert_eq!(report.errors, 0);
}

#[test]
fn shutdown_handle_drains_from_another_thread() {
    let exec = executor(1);
    let server = Server::start(exec, Arc::new(Registry::new()), ServeConfig::default()).unwrap();
    let handle = server.shutdown_handle();
    assert!(!handle.is_shutdown());
    let t = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        handle.shutdown();
    });
    // join() observes the flag flipped by the other thread and returns.
    let report = server.join();
    t.join().unwrap();
    assert_eq!(report.requests, 0);
}

#[test]
fn oversize_frame_gets_error_frame_and_close_server_survives() {
    let exec = executor(1);
    let server = Server::start(
        exec,
        Arc::new(Registry::new()),
        ServeConfig {
            max_frame: 1024,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).unwrap();
    // Announce a frame far beyond the cap; send no payload.
    raw.write_all(&0x7FFF_FFFFu32.to_be_bytes()).unwrap();
    raw.flush().unwrap();
    let payload = read_frame(&mut raw, MAX_FRAME_DEFAULT).unwrap().unwrap();
    match sg_serve::decode_response(&payload).unwrap() {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 0);
            assert_eq!(code, ErrorCode::FrameTooLarge);
        }
        other => panic!("unexpected response: {other:?}"),
    }
    // The connection is then closed (the stream cannot be resynchronized).
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    // The server is unharmed: a fresh connection works.
    let mut client = Client::connect(addr).unwrap();
    match client
        .knn(&query_items(1), 3, MetricName::Hamming, None)
        .unwrap()
    {
        Response::Neighbors { pairs, .. } => assert_eq!(pairs.len(), 3),
        other => panic!("unexpected response: {other:?}"),
    }
    drop(client);
    server.join();
}

#[test]
fn malformed_json_gets_bad_request_and_connection_stays_usable() {
    let exec = executor(1);
    let server = Server::start(exec, Arc::new(Registry::new()), ServeConfig::default()).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();

    write_frame(&mut raw, b"{definitely not json").unwrap();
    let payload = read_frame(&mut raw, MAX_FRAME_DEFAULT).unwrap().unwrap();
    match sg_serve::decode_response(&payload).unwrap() {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 0);
            assert_eq!(code, ErrorCode::BadRequest);
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // Same connection, now a valid request: still served.
    let req = sg_serve::Request::Knn {
        id: 7,
        items: query_items(2),
        k: 4,
        metric: MetricName::Hamming,
        timeout_ms: None,
        trace_id: None,
    };
    write_frame(&mut raw, &sg_serve::encode_request(&req)).unwrap();
    let payload = read_frame(&mut raw, MAX_FRAME_DEFAULT).unwrap().unwrap();
    match sg_serve::decode_response(&payload).unwrap() {
        Response::Neighbors { id, pairs, .. } => {
            assert_eq!(id, 7);
            assert_eq!(pairs.len(), 4);
        }
        other => panic!("unexpected response: {other:?}"),
    }
    drop(raw);
    server.join();
}

#[test]
fn out_of_range_items_get_bad_request() {
    let exec = executor(1);
    let server = Server::start(exec, Arc::new(Registry::new()), ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client
        .knn(&[NBITS + 5], 3, MetricName::Hamming, None)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("unexpected response: {other:?}"),
    }
    drop(client);
    server.join();
}

#[test]
fn lapsed_deadline_yields_deadline_exceeded() {
    let exec = executor(1);
    // A long batching window guarantees the 1ms deadline lapses before
    // dispatch.
    let server = Server::start(
        exec,
        Arc::new(Registry::new()),
        ServeConfig {
            policy: BatchPolicy {
                max_batch: 64,
                max_wait: Duration::from_millis(250),
                queue_cap: 64,
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client
        .knn(&query_items(3), 3, MetricName::Hamming, Some(1))
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
        other => panic!("unexpected response: {other:?}"),
    }
    drop(client);
    let report = server.join();
    assert_eq!(report.timeouts, 1);
}

/// While serving, `/healthz` answers 200 with `ok` or a degraded-but-200
/// detail naming the top index-health finding; both mean "alive".
fn assert_healthy_body(health: &str) {
    let body = health.split("\r\n\r\n").nth(1).unwrap_or("");
    assert!(
        body == "ok\n" || body.starts_with("degraded ("),
        "healthz: {health}"
    );
}

/// One admin HTTP exchange, by hand.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    s.flush().unwrap();
    let mut body = String::new();
    s.read_to_string(&mut body).unwrap();
    body
}

#[test]
fn admin_endpoint_serves_metrics_and_health() {
    let exec = executor(2);
    let registry = Arc::new(Registry::new());
    let server = Server::start(exec, Arc::clone(&registry), ServeConfig::default()).unwrap();
    let admin = server.admin_addr().expect("admin listener enabled");

    let mut client = Client::connect(server.local_addr()).unwrap();
    for i in 0..5u64 {
        client
            .knn(&query_items(i), 3, MetricName::Hamming, None)
            .unwrap();
    }

    let health = http_get(admin, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "healthz: {health}");
    assert_healthy_body(&health);

    let metrics = http_get(admin, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200"), "metrics: {metrics}");
    for series in [
        "serve_accepted",
        "serve_requests",
        "serve_busy_rejected",
        "serve_batches",
        "serve_batch_size_count",
        "serve_queue_depth",
    ] {
        assert!(
            metrics.contains(series),
            "missing series {series}: {metrics}"
        );
    }

    let missing = http_get(admin, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "missing: {missing}");

    // The registry itself carries the ISSUE-mandated counters.
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("serve.requests"), 5);
    assert!(snapshot.counter("serve.batches") >= 1);

    drop(client);
    server.join();
}

#[test]
fn healthz_reports_draining_during_graceful_drain() {
    let exec = executor(1);
    let server = Server::start(exec, Arc::new(Registry::new()), ServeConfig::default()).unwrap();
    let admin = server.admin_addr().expect("admin listener enabled");

    let health = http_get(admin, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "healthz: {health}");
    assert_healthy_body(&health);

    // Flip the drain flag without joining: the accept loop and workers
    // wind down, but the admin listener must stay up and report the
    // drain until `join()` finishes it.
    server.shutdown_handle().shutdown();
    let health = http_get(admin, "/healthz");
    assert!(health.starts_with("HTTP/1.1 503"), "healthz: {health}");
    assert!(health.ends_with("draining\n"), "healthz: {health}");

    server.join();
}

/// Spans of `trace_id` with name `name`, from a flight-recorder snapshot.
fn named<'a>(spans: &'a [sg_obs::SpanData], name: &str) -> Vec<&'a sg_obs::SpanData> {
    spans.iter().filter(|s| s.name == name).collect()
}

#[test]
fn client_trace_id_yields_connected_span_chain() {
    // Process-global recorder: other tests in this binary may record
    // concurrently, but every assertion below filters by this test's own
    // trace ids, so interleaving is harmless.
    span::set_enabled(true);

    let dir = std::env::temp_dir().join(format!("sg-trace-chain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exec = Arc::new(
        ShardedExecutor::open_durable(
            NBITS,
            &ExecConfig {
                shards: 2,
                ..ExecConfig::default()
            },
            &DurabilityConfig::new(&dir),
        )
        .unwrap(),
    );
    let server = Server::start(
        Arc::clone(&exec),
        Arc::new(Registry::new()),
        ServeConfig::default(),
    )
    .unwrap();
    let admin = server.admin_addr().expect("admin listener enabled");
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Untraced preload so the traced query has real work to do.
    for tid in 0..64u64 {
        client.insert(tid, &query_items(tid), None).unwrap();
    }

    const WRITE_TRACE: u64 = 0xC1AE_0000_0000_0001;
    const QUERY_TRACE: u64 = 0xC1AE_0000_0000_0002;

    // One traced durable write; the server must echo the client's id.
    client.set_trace_id(Some(WRITE_TRACE));
    match client.insert(10_000, &query_items(1), None).unwrap() {
        Response::Ack {
            applied, trace_id, ..
        } => {
            assert!(applied);
            assert_eq!(trace_id, Some(WRITE_TRACE));
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // One traced query.
    client.set_trace_id(Some(QUERY_TRACE));
    match client
        .knn(&query_items(2), 5, MetricName::Hamming, None)
        .unwrap()
    {
        Response::Neighbors {
            pairs, trace_id, ..
        } => {
            assert_eq!(pairs.len(), 5);
            assert_eq!(trace_id, Some(QUERY_TRACE));
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // Query chain: serve.request → {decode, queue, dispatch, exec.shard,
    // exec.merge} → core.query under a shard task.
    let spans = span::trace_spans(QUERY_TRACE);
    let roots = named(&spans, "serve.request");
    assert_eq!(roots.len(), 1, "one root per request: {spans:?}");
    let root = roots[0];
    assert_eq!(root.parent, 0);
    for child in [
        "serve.decode",
        "serve.queue",
        "serve.dispatch",
        "exec.merge",
    ] {
        let found = named(&spans, child);
        assert_eq!(found.len(), 1, "missing {child}: {spans:?}");
        assert_eq!(
            found[0].parent, root.span_id,
            "{child} must parent to the root"
        );
    }
    let shards = named(&spans, "exec.shard");
    assert!(!shards.is_empty(), "no shard spans: {spans:?}");
    assert!(shards.iter().all(|s| s.parent == root.span_id));
    let cores = named(&spans, "core.query");
    assert!(!cores.is_empty(), "no core spans: {spans:?}");
    assert!(
        cores
            .iter()
            .all(|c| shards.iter().any(|s| s.span_id == c.parent)),
        "core.query must parent to a shard task: {spans:?}"
    );

    // Write chain: serve.request → exec.write_group → pager.wal_append
    // → pager.fsync.
    let spans = span::trace_spans(WRITE_TRACE);
    let roots = named(&spans, "serve.request");
    assert_eq!(roots.len(), 1, "one root per request: {spans:?}");
    let root = roots[0];
    let groups = named(&spans, "exec.write_group");
    assert_eq!(groups.len(), 1, "one write group: {spans:?}");
    assert_eq!(groups[0].parent, root.span_id);
    let appends = named(&spans, "pager.wal_append");
    assert!(!appends.is_empty(), "no WAL spans: {spans:?}");
    assert!(appends.iter().all(|a| a.parent == groups[0].span_id));
    let syncs = named(&spans, "pager.fsync");
    assert!(!syncs.is_empty(), "no fsync spans: {spans:?}");
    assert!(
        syncs
            .iter()
            .all(|f| appends.iter().any(|a| a.span_id == f.parent)),
        "fsync must parent to a WAL append: {spans:?}"
    );

    // The admin endpoint serves the recorder as Chrome trace_event JSON.
    let flight = http_get(admin, "/debug/flight");
    assert!(flight.starts_with("HTTP/1.1 200"), "flight: {flight}");
    assert!(flight.contains("\"traceEvents\""));
    assert!(flight.contains("serve.request"));
    assert!(flight.contains("\"ph\":\"X\""));

    span::set_enabled(false);
    drop(client);
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_query_log_captures_exactly_the_requests_over_threshold() {
    const THRESHOLD: Duration = Duration::from_millis(60);
    span::set_slow_threshold_ns(THRESHOLD.as_nanos() as u64);

    // Slow by construction: a long batching window holds each query
    // admitted until the window lapses, so its end-to-end latency is
    // ≥ max_wait ≫ threshold, deterministically.
    let slow_server = Server::start(
        executor(1),
        Arc::new(Registry::new()),
        ServeConfig {
            policy: BatchPolicy {
                max_batch: 64,
                max_wait: Duration::from_millis(150),
                queue_cap: 64,
            },
            default_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    // Fast by construction: dispatch is immediate and a 3k-row k-NN is
    // far below the threshold.
    let fast_server = Server::start(
        executor(1),
        Arc::new(Registry::new()),
        ServeConfig::default(),
    )
    .unwrap();

    const SLOW_TRACE: u64 = 0xC1AE_0000_0000_0011;
    const FAST_TRACE: u64 = 0xC1AE_0000_0000_0012;

    let mut slow_client = Client::connect(slow_server.local_addr()).unwrap();
    slow_client.set_trace_id(Some(SLOW_TRACE));
    let mut fast_client = Client::connect(fast_server.local_addr()).unwrap();
    fast_client.set_trace_id(Some(FAST_TRACE));

    for i in 0..2u64 {
        slow_client
            .knn(&query_items(i), 3, MetricName::Hamming, None)
            .unwrap();
        fast_client
            .knn(&query_items(i), 3, MetricName::Hamming, None)
            .unwrap();
    }

    // The log is process-global and other tests may promote their own
    // requests concurrently; filter by this test's trace ids.
    let entries = span::slow_entries();
    let slow: Vec<_> = entries
        .iter()
        .filter(|e| e.trace_id == SLOW_TRACE)
        .collect();
    assert_eq!(
        slow.len(),
        2,
        "both over-threshold queries must be captured"
    );
    for e in &slow {
        assert_eq!(e.name, "knn");
        assert!(e.dur_ns >= THRESHOLD.as_nanos() as u64);
        // An armed threshold also arms EXPLAIN collection at dispatch, so
        // a captured entry carries the per-shard trace.
        assert!(e.explain.is_some(), "slow entry must carry EXPLAIN: {e:?}");
    }
    assert!(
        entries.iter().all(|e| e.trace_id != FAST_TRACE),
        "under-threshold queries must not be captured"
    );

    let admin = slow_server.admin_addr().expect("admin listener enabled");
    let slow_json = http_get(admin, "/debug/slow");
    assert!(slow_json.starts_with("HTTP/1.1 200"), "slow: {slow_json}");
    assert!(slow_json.contains(&format!("\"trace_id\":{SLOW_TRACE}")));

    span::set_slow_threshold_ns(u64::MAX);
    drop(slow_client);
    drop(fast_client);
    slow_server.join();
    fast_server.join();
}
