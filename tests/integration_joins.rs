//! Integration tests for the §4.2 query types (similarity join, closest
//! pair), incremental distance browsing, and concurrent read access.

use sg_bench::workloads::{basket_instance, build_tree, pairs_of};
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use sg_tree::{SgTree, SplitPolicy};

type TreeAndData = (SgTree, Vec<(u64, Signature)>);

fn two_trees(n: usize) -> (TreeAndData, TreeAndData) {
    let pool_a = PatternPool::new(BasketParams::standard(8, 4), 21);
    let pool_b = PatternPool::new(BasketParams::standard(8, 4), 22);
    let ds_a = pool_a.dataset(n, 21);
    let ds_b = pool_b.dataset(n, 22);
    let data_a = pairs_of(&ds_a);
    let data_b: Vec<(u64, Signature)> = pairs_of(&ds_b)
        .into_iter()
        .map(|(tid, s)| (tid + 1_000_000, s))
        .collect();
    let (ta, _) = build_tree(1000, &data_a, None);
    let (tb, _) = build_tree(1000, &data_b, None);
    ((ta, data_a), (tb, data_b))
}

#[test]
fn similarity_join_matches_nested_loop_on_generator_data() {
    let ((ta, da), (tb, db)) = two_trees(400);
    let m = Metric::hamming();
    for eps in [1.0, 4.0] {
        let (got, stats) = ta.similarity_join(&tb, eps, &m);
        let mut want = 0usize;
        for (_, sa) in &da {
            for (_, sb) in &db {
                if m.dist(sa, sb) <= eps {
                    want += 1;
                }
            }
        }
        assert_eq!(got.len(), want, "eps={eps}");
        assert!(got.iter().all(|p| p.dist <= eps));
        assert!(got
            .iter()
            .all(|p| p.left < 1_000_000 && p.right >= 1_000_000));
        assert!(stats.nodes_accessed > 0);
    }
}

#[test]
fn join_prunes_against_scan_product() {
    let ((ta, da), (tb, db)) = two_trees(600);
    let m = Metric::hamming();
    let (_, stats) = ta.similarity_join(&tb, 2.0, &m);
    // An unindexed nested loop compares |A|·|B| pairs; the join must do
    // far fewer distance computations at a tight epsilon.
    let full = (da.len() * db.len()) as u64;
    assert!(
        stats.dist_computations < full / 2,
        "join compared {} of {} pairs",
        stats.dist_computations,
        full
    );
}

#[test]
fn closest_pair_agrees_with_join_at_its_distance() {
    let ((ta, _), (tb, _)) = two_trees(300);
    let m = Metric::hamming();
    let (best, _) = ta.closest_pair(&tb, &m);
    let best = best.expect("nonempty");
    // A join at exactly the closest distance must contain the pair and
    // nothing closer.
    let (pairs, _) = ta.similarity_join(&tb, best.dist, &m);
    assert!(pairs.iter().any(|p| p.dist == best.dist));
    assert!(pairs.iter().all(|p| p.dist >= best.dist));
}

#[test]
fn self_closest_pair_is_zero_for_duplicated_data() {
    let pool = PatternPool::new(BasketParams::standard(8, 4), 31);
    let ds = pool.dataset(500, 31);
    let data = pairs_of(&ds);
    let shifted: Vec<(u64, Signature)> = data
        .iter()
        .map(|(tid, s)| (tid + 5_000, s.clone()))
        .collect();
    let (ta, _) = build_tree(1000, &data, None);
    let (tb, _) = build_tree(1000, &shifted, None);
    let (best, _) = ta.closest_pair(&tb, &Metric::hamming());
    assert_eq!(best.expect("nonempty").dist, 0.0);
}

#[test]
fn incremental_browsing_agrees_with_knn_across_crates() {
    let (inst, queries) = basket_instance(10, 6, 3_000, 10, SplitPolicy::AvLink);
    let m = Metric::hamming();
    for q in &queries {
        let stream: Vec<f64> = inst.tree.nn_iter(q, &m).take(25).map(|n| n.dist).collect();
        let (want, _) = inst.scan.knn(q, 25, &m);
        let wd: Vec<f64> = want.iter().map(|n| n.dist).collect();
        assert_eq!(stream, wd);
    }
}

#[test]
fn concurrent_queries_are_consistent() {
    let (inst, queries) = basket_instance(10, 6, 5_000, 16, SplitPolicy::AvLink);
    let m = Metric::hamming();
    // Sequential ground truth.
    let expected: Vec<Vec<f64>> = queries
        .iter()
        .map(|q| inst.tree.knn(q, 5, &m).0.iter().map(|n| n.dist).collect())
        .collect();
    // The same queries from 8 threads sharing the tree.
    std::thread::scope(|s| {
        for chunk in queries.chunks(2).zip(expected.chunks(2)) {
            let (qs, want) = chunk;
            let tree = &inst.tree;
            s.spawn(move || {
                for (q, w) in qs.iter().zip(want) {
                    for _ in 0..5 {
                        let (got, _) = tree.knn(q, 5, &m);
                        let gd: Vec<f64> = got.iter().map(|n| n.dist).collect();
                        assert_eq!(&gd, w);
                    }
                }
            });
        }
    });
}

#[test]
fn joins_under_jaccard_metric() {
    let ((ta, da), (tb, db)) = two_trees(200);
    let m = Metric::jaccard();
    let (got, _) = ta.similarity_join(&tb, 0.3, &m);
    let mut want = 0usize;
    for (_, sa) in &da {
        for (_, sb) in &db {
            if m.dist(sa, sb) <= 0.3 {
                want += 1;
            }
        }
    }
    assert_eq!(got.len(), want);
}
