//! Cross-index integration: the SG-tree, inverted lists, and MinHash-LSH
//! over the same generated workloads — exactness where promised, recall
//! where approximate, and the Figure-12-style perturbed workload with
//! known distance structure.

use sg_bench::workloads::{build_tree, pairs_of, PAGE_SIZE, POOL_FRAMES};
use sg_inverted::InvertedIndex;
use sg_minhash::{LshParams, MinHashLsh};
use sg_pager::MemStore;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_quest::{perturb, perturbed_queries};
use sg_sig::{Metric, Signature};
use std::sync::Arc;

fn workload(n: usize) -> (Vec<(u64, Signature)>, Vec<Signature>, u32) {
    let pool = PatternPool::new(BasketParams::standard(10, 6), 404);
    let ds = pool.dataset(n, 404);
    let queries = pool
        .queries(20, 404)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    (pairs_of(&ds), queries, ds.n_items)
}

#[test]
fn inverted_and_tree_agree_on_every_exact_query() {
    let (data, queries, nbits) = workload(4_000);
    let (tree, _) = build_tree(nbits, &data, None);
    let inv = InvertedIndex::build(
        Arc::new(MemStore::new(PAGE_SIZE)),
        nbits,
        POOL_FRAMES,
        &data,
    );
    let m = Metric::hamming();
    for q in &queries {
        let (a, _) = tree.knn(q, 8, &m);
        let (b, _) = inv.knn(q, 8, &m);
        let ad: Vec<f64> = a.iter().map(|n| n.dist).collect();
        let bd: Vec<f64> = b.iter().map(|n| n.dist).collect();
        assert_eq!(ad, bd);
        let (a, _) = tree.range(q, 5.0, &m);
        let (b, _) = inv.range(q, 5.0, &m);
        assert_eq!(a.len(), b.len());
        let short = Signature::from_iter(nbits, q.ones().take(2));
        let (a, _) = tree.containing(&short);
        let (b, _) = inv.containing(&short);
        assert_eq!(a, b);
        let (a, _) = tree.contained_in(q);
        let (b, _) = inv.contained_in(q);
        assert_eq!(a, b);
    }
}

#[test]
fn inverted_dominates_containment_tree_dominates_nn() {
    // T20.I12: the clustered mid-size regime where each structure's home
    // turf shows (at tiny T the posting lists are so short that
    // term-at-a-time NN is competitive).
    let pool = PatternPool::new(BasketParams::standard(20, 12), 404);
    let ds = pool.dataset(10_000, 404);
    let data = pairs_of(&ds);
    let queries: Vec<Signature> = pool
        .queries(20, 404)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    let nbits = ds.n_items;
    let (tree, _) = build_tree(nbits, &data, None);
    let inv = InvertedIndex::build(
        Arc::new(MemStore::new(PAGE_SIZE)),
        nbits,
        POOL_FRAMES,
        &data,
    );
    let m = Metric::hamming();
    let mut tree_contain_pages = 0u64;
    let mut inv_contain_pages = 0u64;
    let mut tree_nn_cmp = 0u64;
    let mut inv_nn_cmp = 0u64;
    for q in &queries {
        let probe = Signature::from_iter(nbits, q.ones().take(3));
        tree_contain_pages += tree.containing(&probe).1.nodes_accessed;
        inv_contain_pages += inv.containing(&probe).1.nodes_accessed;
        tree_nn_cmp += tree.nn(q, &m).1.data_compared;
        inv_nn_cmp += inv.nn(q, &m).1.data_compared;
    }
    assert!(
        inv_contain_pages < tree_contain_pages,
        "inverted should win containment: {inv_contain_pages} vs {tree_contain_pages}"
    );
    assert!(
        tree_nn_cmp < inv_nn_cmp,
        "tree should win NN: {tree_nn_cmp} vs {inv_nn_cmp}"
    );
}

#[test]
fn lsh_results_are_sound_and_recall_reasonable() {
    let (data, _, nbits) = workload(5_000);
    let (tree, _) = build_tree(nbits, &data, None);
    let lsh = MinHashLsh::build(nbits, LshParams::default(), &data);
    let mj = Metric::jaccard();
    // Self-queries: the identical record must always be found (Jaccard 1
    // collides in every band).
    let mut hits = 0usize;
    for (tid, sig) in data.iter().step_by(500) {
        let (res, _) = lsh.knn(sig, 1, &mj);
        if res.first().map(|n| n.tid) == Some(*tid) || res.first().map(|n| n.dist) == Some(0.0) {
            hits += 1;
        }
    }
    assert_eq!(hits, 10, "self-queries must always hit");
    // Every approximate answer is a true record at its true distance.
    let q = &data[7].1;
    let (approx, _) = lsh.knn(q, 10, &mj);
    let (exact, _) = tree.knn(q, 10, &mj);
    for a in &approx {
        assert!(a.dist >= exact[0].dist - 1e-12, "cannot beat the exact NN");
    }
}

#[test]
fn perturbed_workload_has_promised_nn_distances() {
    // The Figure-12 mechanism, driven deterministically: a query perturbed
    // by r edits from an indexed transaction has NN distance ≤ r on the
    // tree, the table, and the inverted index alike.
    let (data, _, nbits) = workload(3_000);
    let (tree, _) = build_tree(nbits, &data, None);
    let inv = InvertedIndex::build(
        Arc::new(MemStore::new(PAGE_SIZE)),
        nbits,
        POOL_FRAMES,
        &data,
    );
    let sigs: Vec<Signature> = data.iter().map(|(_, s)| s.clone()).collect();
    let m = Metric::hamming();
    for (r, q) in perturbed_queries(&sigs, &[0, 1, 3, 8], 10, 5) {
        let (nn_tree, _) = tree.nn(&q, &m);
        assert!(
            nn_tree[0].dist <= r as f64,
            "tree NN {} > r {r}",
            nn_tree[0].dist
        );
        let (nn_inv, _) = inv.nn(&q, &m);
        assert_eq!(nn_tree[0].dist, nn_inv[0].dist);
    }
}

#[test]
fn perturb_controls_cost_monotonically() {
    // Harder (more distant) queries cost the tree more — the Figure 12
    // shape, asserted directly thanks to the controlled workload.
    let (data, _, nbits) = workload(8_000);
    let (tree, _) = build_tree(nbits, &data, None);
    let sigs: Vec<Signature> = data.iter().map(|(_, s)| s.clone()).collect();
    let m = Metric::hamming();
    let mut costs = Vec::new();
    for r in [0u32, 10, 25] {
        let qs = perturbed_queries(&sigs, &[r], 25, 11);
        let total: u64 = qs.iter().map(|(_, q)| tree.nn(q, &m).1.data_compared).sum();
        costs.push(total as f64 / qs.len() as f64);
    }
    assert!(
        costs[0] < costs[2],
        "distance-0 queries should be far cheaper than distance-25: {costs:?}"
    );
}

#[test]
fn single_edit_perturbation_found_by_all_indexes() {
    let (data, _, nbits) = workload(2_000);
    let (tree, _) = build_tree(nbits, &data, None);
    let inv = InvertedIndex::build(
        Arc::new(MemStore::new(PAGE_SIZE)),
        nbits,
        POOL_FRAMES,
        &data,
    );
    let m = Metric::hamming();
    let mut x = 99u64;
    let mut rng = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
        x
    };
    for (tid, sig) in data.iter().step_by(400) {
        let q = perturb(sig, 1, &mut rng);
        let (hits, _) = tree.range(&q, 1.0, &m);
        assert!(hits.iter().any(|n| n.tid == *tid), "tree missed tid {tid}");
        let (hits, _) = inv.range(&q, 1.0, &m);
        assert!(
            hits.iter().any(|n| n.tid == *tid),
            "inverted missed tid {tid}"
        );
    }
}
