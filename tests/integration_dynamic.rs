//! Dynamic-maintenance integration: batch inserts with drifting
//! distributions (the Figure 17 setting), deletions, and bulk loading.

use sg_bench::workloads::{build_table, build_tree, pairs_of, PAGE_SIZE};
use sg_pager::MemStore;
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use sg_tree::{bulkload, Tid, TreeConfig};
use std::sync::Arc;

const NBITS: u32 = 1000;

fn drifting_batches(n_batches: usize, batch: usize) -> Vec<Vec<(Tid, Signature)>> {
    (0..n_batches)
        .map(|b| {
            let pool = PatternPool::new(BasketParams::standard(10, 6), 500 + b as u64);
            let ds = pool.dataset(batch, b as u64);
            pairs_of(&ds)
                .into_iter()
                .map(|(tid, s)| (tid + (b * batch) as u64, s))
                .collect()
        })
        .collect()
}

#[test]
fn tree_stays_exact_across_drifting_batches() {
    let batches = drifting_batches(4, 1500);
    let mut all: Vec<(Tid, Signature)> = Vec::new();
    let (mut tree, _) = build_tree(NBITS, &batches[0], None);
    all.extend(batches[0].iter().cloned());
    let m = Metric::hamming();
    for b in &batches[1..] {
        for (tid, sig) in b {
            tree.insert(*tid, sig);
        }
        all.extend(b.iter().cloned());
        tree.validate();
        // Exactness after each phase.
        for (qi, (_, q)) in all.iter().enumerate().step_by(all.len() / 5) {
            let (got, _) = tree.nn(q, &m);
            assert_eq!(got[0].dist, 0.0, "query {qi} is indexed, NN dist must be 0");
        }
    }
    assert_eq!(tree.len() as usize, all.len());
}

#[test]
fn table_stays_exact_but_prunes_worse_after_drift() {
    // The SG-table remains correct under drift (its bounds hold for any
    // data) — it just prunes less because the stale vertical signatures
    // stop matching the data. Correctness here; pruning shape in `repro
    // fig17`.
    let batches = drifting_batches(3, 1500);
    let (mut table, _) = build_table(NBITS, &batches[0]);
    let mut all: Vec<(Tid, Signature)> = batches[0].clone();
    for b in &batches[1..] {
        for (tid, sig) in b {
            table.insert(*tid, sig);
        }
        all.extend(b.iter().cloned());
    }
    let m = Metric::hamming();
    for (_, q) in all.iter().step_by(all.len() / 10) {
        let (got, _) = table.knn(q, 3, &m);
        assert_eq!(got[0].dist, 0.0);
        // Verify against brute force.
        let mut want: Vec<f64> = all.iter().map(|(_, s)| m.dist(q, s)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let gd: Vec<f64> = got.iter().map(|n| n.dist).collect();
        assert_eq!(gd, want[..3].to_vec());
    }
}

#[test]
fn mass_deletion_then_requery() {
    let batches = drifting_batches(2, 2000);
    let (mut tree, _) = build_tree(NBITS, &batches[0], None);
    for (tid, sig) in &batches[1] {
        tree.insert(*tid, sig);
    }
    // Delete the entire first batch.
    for (tid, sig) in &batches[0] {
        assert!(tree.delete(*tid, sig));
    }
    tree.validate();
    assert_eq!(tree.len(), 2000);
    let m = Metric::hamming();
    for (_, q) in batches[1].iter().step_by(400) {
        let (got, _) = tree.nn(q, &m);
        assert_eq!(got[0].dist, 0.0);
    }
    // Deleted data is gone.
    let (_, gone_sig) = &batches[0][0];
    let (hits, _) = tree.exact(gone_sig);
    for h in hits {
        assert!(h >= 2000, "tid {h} from batch 0 should be deleted");
    }
}

#[test]
fn bulk_load_equals_incremental_results() {
    let data = drifting_batches(1, 3000).pop().unwrap();
    let (incr, _) = build_tree(NBITS, &data, None);
    let bulk = bulkload::bulk_load(
        Arc::new(MemStore::new(PAGE_SIZE)),
        TreeConfig::new(NBITS),
        data.iter().cloned(),
        1.0,
    )
    .unwrap();
    bulk.validate();
    assert_eq!(incr.len(), bulk.len());
    let m = Metric::hamming();
    let pool = PatternPool::new(BasketParams::standard(10, 6), 500);
    for q in pool.queries(10, 3) {
        let q = Signature::from_items(NBITS, &q);
        let (a, _) = incr.knn(&q, 5, &m);
        let (b, _) = bulk.knn(&q, 5, &m);
        let ad: Vec<f64> = a.iter().map(|n| n.dist).collect();
        let bd: Vec<f64> = b.iter().map(|n| n.dist).collect();
        assert_eq!(ad, bd);
    }
    // Bulk loading at full fill should use no more pages than incremental
    // construction.
    assert!(bulk.node_count() <= incr.node_count());
}

#[test]
fn reinsert_after_delete_keeps_quality() {
    // Churn: repeatedly delete and reinsert a window; invariants must hold
    // and the tree must stay exact.
    let data = drifting_batches(1, 2500).pop().unwrap();
    let (mut tree, _) = build_tree(NBITS, &data, None);
    let m = Metric::hamming();
    for round in 0..5 {
        let lo = round * 300;
        for (tid, sig) in &data[lo..lo + 300] {
            assert!(tree.delete(*tid, sig));
        }
        for (tid, sig) in &data[lo..lo + 300] {
            tree.insert(*tid, sig);
        }
    }
    tree.validate();
    assert_eq!(tree.len() as usize, data.len());
    let (got, _) = tree.nn(&data[100].1, &m);
    assert_eq!(got[0].dist, 0.0);
}
