//! Property-based tests across the indexes: for arbitrary datasets and
//! query mixes, the SG-tree and SG-table must match brute force exactly,
//! and arbitrary insert/delete interleavings must preserve the tree's
//! invariants.

use proptest::prelude::*;
use sg_pager::MemStore;
use sg_sig::{Metric, MetricKind, Signature, Vocabulary};
use sg_table::{SgTable, TableParams};
use sg_tree::{bulkload, SgTree, SplitPolicy, TreeConfig};
use std::sync::Arc;

const NBITS: u32 = 96;

fn arb_transaction() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..NBITS, 1..10)
}

fn arb_dataset(max: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(arb_transaction(), 1..max)
}

fn build_tree(data: &[Vec<u32>], policy: SplitPolicy) -> SgTree {
    let mut tree = SgTree::create(
        Arc::new(MemStore::new(512)),
        TreeConfig::new(NBITS).split(policy),
    )
    .unwrap();
    for (tid, items) in data.iter().enumerate() {
        tree.insert(tid as u64, &Signature::from_items(NBITS, items));
    }
    tree
}

fn brute_knn(data: &[Vec<u32>], q: &Signature, k: usize, m: &Metric) -> Vec<f64> {
    let mut d: Vec<f64> = data
        .iter()
        .map(|t| m.dist(q, &Signature::from_items(NBITS, t)))
        .collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d.truncate(k);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_knn_exact_for_arbitrary_data(
        data in arb_dataset(120),
        query in arb_transaction(),
        k in 1usize..20,
        policy in prop_oneof![
            Just(SplitPolicy::Quadratic),
            Just(SplitPolicy::AvLink),
            Just(SplitPolicy::MinLink),
        ],
    ) {
        let tree = build_tree(&data, policy);
        tree.validate();
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::hamming();
        let (got, _) = tree.knn(&q, k, &m);
        let want = brute_knn(&data, &q, k, &m);
        prop_assert_eq!(got.iter().map(|n| n.dist).collect::<Vec<_>>(), want);
    }

    #[test]
    fn tree_range_exact_for_arbitrary_data(
        data in arb_dataset(100),
        query in arb_transaction(),
        eps in 0u32..12,
    ) {
        let tree = build_tree(&data, SplitPolicy::MinLink);
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::hamming();
        let (got, _) = tree.range(&q, eps as f64, &m);
        let want = data
            .iter()
            .filter(|t| m.dist(&q, &Signature::from_items(NBITS, t)) <= eps as f64)
            .count();
        prop_assert_eq!(got.len(), want);
    }

    #[test]
    fn tree_jaccard_knn_exact(
        data in arb_dataset(80),
        query in arb_transaction(),
    ) {
        let tree = build_tree(&data, SplitPolicy::MinLink);
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::jaccard();
        let (got, _) = tree.knn(&q, 5, &m);
        let want = brute_knn(&data, &q, 5, &m);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.dist - w).abs() < 1e-12);
        }
    }

    #[test]
    fn table_knn_exact_for_arbitrary_data(
        data in arb_dataset(120),
        query in arb_transaction(),
        k in 1usize..10,
        theta in 1u32..4,
    ) {
        let pairs: Vec<(u64, Signature)> = data
            .iter()
            .enumerate()
            .map(|(tid, t)| (tid as u64, Signature::from_items(NBITS, t)))
            .collect();
        let params = TableParams {
            k_signatures: 5,
            activation: theta,
            critical_mass: 0.3,
            pool_frames: 16,
        };
        let table = SgTable::build(Arc::new(MemStore::new(512)), NBITS, &params, &pairs);
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::hamming();
        let (got, _) = table.knn(&q, k, &m);
        let want = brute_knn(&data, &q, k, &m);
        prop_assert_eq!(got.iter().map(|n| n.dist).collect::<Vec<_>>(), want);
    }

    #[test]
    fn interleaved_ops_preserve_invariants_and_content(
        ops in prop::collection::vec((any::<bool>(), arb_transaction()), 1..150),
    ) {
        let mut tree = SgTree::create(
            Arc::new(MemStore::new(512)),
            TreeConfig::new(NBITS),
        ).unwrap();
        let mut model: Vec<(u64, Vec<u32>)> = Vec::new();
        let mut next = 0u64;
        for (is_insert, items) in ops {
            if is_insert || model.is_empty() {
                let sig = Signature::from_items(NBITS, &items);
                tree.insert(next, &sig);
                let mut sorted = items.clone();
                sorted.sort_unstable();
                sorted.dedup();
                model.push((next, sorted));
                next += 1;
            } else {
                let idx = (items.iter().map(|&x| x as usize).sum::<usize>()) % model.len();
                let (tid, sorted) = model.swap_remove(idx);
                let sig = Signature::from_items(NBITS, &sorted);
                prop_assert!(tree.delete(tid, &sig));
            }
        }
        tree.validate();
        prop_assert_eq!(tree.len() as usize, model.len());
        let mut got: Vec<u64> = tree.dump().into_iter().map(|(tid, _)| tid).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = model.iter().map(|(tid, _)| *tid).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn containment_exact_for_arbitrary_data(
        data in arb_dataset(100),
        query in prop::collection::vec(0..NBITS, 1..4),
    ) {
        let tree = build_tree(&data, SplitPolicy::MinLink);
        let q = Signature::from_items(NBITS, &query);
        let (got, _) = tree.containing(&q);
        let want: Vec<u64> = data
            .iter()
            .enumerate()
            .filter(|(_, t)| Signature::from_items(NBITS, t).contains(&q))
            .map(|(tid, _)| tid as u64)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn fixed_dim_queries_exact_on_fixed_size_tuples(
        seeds in prop::collection::vec(prop::collection::vec(0..24u32, 4), 2..80),
        query in prop::collection::vec(0..NBITS, 1..8),
    ) {
        // Build 4-attribute tuples: attribute a has values in
        // [24a, 24(a+1)).
        let data: Vec<Vec<u32>> = seeds
            .iter()
            .map(|s| s.iter().enumerate().map(|(a, v)| a as u32 * 24 + v).collect())
            .collect();
        let tree = build_tree(&data, SplitPolicy::MinLink);
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::with_fixed_dim(MetricKind::Hamming, 4);
        let (got, _) = tree.knn(&q, 3, &m);
        let want = brute_knn(&data, &q, 3, &Metric::hamming());
        prop_assert_eq!(got.iter().map(|n| n.dist).collect::<Vec<_>>(), want);
    }
    #[test]
    fn bulk_load_equals_insertion_results(
        data in arb_dataset(150),
        query in arb_transaction(),
        fill in 0.4f64..1.0,
    ) {
        let pairs: Vec<(u64, Signature)> = data
            .iter()
            .enumerate()
            .map(|(tid, t)| (tid as u64, Signature::from_items(NBITS, t)))
            .collect();
        let bulk = bulkload::bulk_load(
            Arc::new(MemStore::new(512)),
            TreeConfig::new(NBITS),
            pairs,
            fill,
        )
        .unwrap();
        bulk.validate();
        prop_assert_eq!(bulk.len() as usize, data.len());
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::hamming();
        let (got, _) = bulk.knn(&q, 5, &m);
        let want = brute_knn(&data, &q, 5, &m);
        prop_assert_eq!(got.iter().map(|n| n.dist).collect::<Vec<_>>(), want);
    }

    #[test]
    fn incremental_iterator_is_fully_sorted(
        data in arb_dataset(100),
        query in arb_transaction(),
    ) {
        let tree = build_tree(&data, SplitPolicy::AvLink);
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::hamming();
        let stream: Vec<f64> = tree.nn_iter(&q, &m).map(|n| n.dist).collect();
        prop_assert_eq!(stream.len(), data.len());
        prop_assert!(stream.windows(2).all(|w| w[0] <= w[1]));
        let want = brute_knn(&data, &q, data.len(), &m);
        prop_assert_eq!(stream, want);
    }

    #[test]
    fn vocabulary_signatures_agree_with_manual_ids(
        baskets in prop::collection::vec(
            prop::collection::vec(0u8..60, 1..8), 1..30
        ),
    ) {
        // Interning labels in first-seen order must produce signatures
        // isomorphic to a manual dense-id assignment.
        let mut vocab = Vocabulary::new(64);
        let mut manual: std::collections::HashMap<u8, u32> = Default::default();
        for basket in &baskets {
            let labels: Vec<String> = basket.iter().map(|b| format!("item-{b}")).collect();
            let sig = vocab.signature_of(labels.iter());
            for b in basket {
                let next = manual.len() as u32;
                let id = *manual.entry(*b).or_insert(next);
                prop_assert!(sig.get(id), "expected bit {id} for label {b}");
            }
            prop_assert_eq!(sig.count() as usize, {
                let mut dedup = basket.clone();
                dedup.sort_unstable();
                dedup.dedup();
                dedup.len()
            });
        }
    }

    #[test]
    fn table_range_exact_for_arbitrary_data(
        data in arb_dataset(100),
        query in arb_transaction(),
        eps in 0u32..10,
    ) {
        let pairs: Vec<(u64, Signature)> = data
            .iter()
            .enumerate()
            .map(|(tid, t)| (tid as u64, Signature::from_items(NBITS, t)))
            .collect();
        let table = SgTable::build(
            Arc::new(MemStore::new(512)),
            NBITS,
            &TableParams {
                k_signatures: 6,
                activation: 2,
                critical_mass: 0.4,
                pool_frames: 16,
            },
            &pairs,
        );
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::hamming();
        let (got, _) = table.range(&q, eps as f64, &m);
        let want = data
            .iter()
            .filter(|t| m.dist(&q, &Signature::from_items(NBITS, t)) <= eps as f64)
            .count();
        prop_assert_eq!(got.len(), want);
    }

    #[test]
    fn table_rebuild_preserves_exactness(
        data in arb_dataset(80),
        extra in arb_dataset(40),
        query in arb_transaction(),
    ) {
        let params = TableParams {
            k_signatures: 5,
            activation: 2,
            critical_mass: 0.3,
            pool_frames: 16,
        };
        let pairs: Vec<(u64, Signature)> = data
            .iter()
            .enumerate()
            .map(|(tid, t)| (tid as u64, Signature::from_items(NBITS, t)))
            .collect();
        let mut table = SgTable::build(Arc::new(MemStore::new(512)), NBITS, &params, &pairs);
        let mut all = data.clone();
        for (off, t) in extra.iter().enumerate() {
            table.insert((data.len() + off) as u64, &Signature::from_items(NBITS, t));
            all.push(t.clone());
        }
        table.rebuild(&params);
        prop_assert_eq!(table.len() as usize, all.len());
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::hamming();
        let (got, _) = table.knn(&q, 4, &m);
        let want = brute_knn(&all, &q, 4, &m);
        prop_assert_eq!(got.iter().map(|n| n.dist).collect::<Vec<_>>(), want);
    }
}

// ---------------------------------------------------------------------------
// Sharded-execution invariants (sg-exec).
// ---------------------------------------------------------------------------

use sg_exec::{merge_knn, ExecConfig, Partitioner, ShardedExecutor};
use sg_tree::{Neighbor, SharedBound};

fn pairs(data: &[Vec<u32>]) -> Vec<(u64, Signature)> {
    data.iter()
        .enumerate()
        .map(|(tid, t)| (tid as u64, Signature::from_items(NBITS, t)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The cross-shard k-NN bound only ever tightens: after any sequence
    // of `observe` calls, `get()` equals the running minimum and every
    // intermediate read is monotone non-increasing.
    #[test]
    fn shared_bound_is_monotone_non_increasing(
        dists in prop::collection::vec(0.0f64..1e6, 1..64),
    ) {
        let bound = SharedBound::new();
        prop_assert_eq!(bound.get(), f64::INFINITY);
        let mut prev = f64::INFINITY;
        let mut min = f64::INFINITY;
        for d in dists {
            bound.observe(d);
            min = min.min(d);
            let now = bound.get();
            prop_assert!(now <= prev, "bound rose from {} to {}", prev, now);
            prop_assert_eq!(now, min);
            prev = now;
        }
    }

    // Merging per-shard top-k lists yields exactly the first k of the
    // canonical (dist, tid) ranking of everything the shards returned —
    // a permutation-stable prefix, independent of how the input was
    // split into parts.
    #[test]
    fn merged_topk_is_canonical_prefix(
        raw in prop::collection::vec((0u64..500, 0.0f64..32.0), 1..80),
        cuts in prop::collection::vec(0usize..80, 0..4),
        k in 1usize..16,
    ) {
        // Dedup tids so the canonical order is a total order.
        let mut seen = std::collections::HashSet::new();
        let all: Vec<Neighbor> = raw
            .into_iter()
            .filter(|(tid, _)| seen.insert(*tid))
            .map(|(tid, dist)| Neighbor { tid, dist })
            .collect();
        // Split into parts at arbitrary cut points.
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (all.len() + 1)).collect();
        cuts.sort_unstable();
        let mut parts: Vec<Vec<Neighbor>> = Vec::new();
        let mut prev = 0;
        for c in cuts {
            parts.push(all[prev..c].to_vec());
            prev = c;
        }
        parts.push(all[prev..].to_vec());

        let merged = merge_knn(parts, k);

        let mut want = all.clone();
        want.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.tid.cmp(&b.tid)));
        want.truncate(k);
        prop_assert_eq!(merged, want);
    }

    // Both partitioners are complete and duplicate-free: every tid lands
    // in exactly one shard, whatever the data and shard count.
    #[test]
    fn partitioners_preserve_every_tid_exactly_once(
        data in arb_dataset(120),
        shards in 1usize..8,
        clustered in any::<bool>(),
    ) {
        let p = if clustered {
            Partitioner::SignatureClustered
        } else {
            Partitioner::RoundRobin
        };
        let input = pairs(&data);
        let parts = p.partition(&input, shards);
        prop_assert_eq!(parts.len(), shards);
        let mut tids: Vec<u64> = parts.iter().flatten().map(|(t, _)| *t).collect();
        tids.sort_unstable();
        let want: Vec<u64> = (0..input.len() as u64).collect();
        prop_assert_eq!(tids, want);
    }

    // End to end: for arbitrary data, the sharded executor's k-NN equals
    // the single tree's k-NN byte for byte.
    #[test]
    fn sharded_knn_equals_single_tree(
        data in arb_dataset(100),
        query in arb_transaction(),
        k in 1usize..12,
        shards in 1usize..5,
    ) {
        let input = pairs(&data);
        let tree = build_tree(&data, SplitPolicy::MinLink);
        let exec = ShardedExecutor::build(
            NBITS,
            &input,
            &ExecConfig { shards, pool_frames: 64, ..ExecConfig::default() },
        )
        .unwrap();
        let q = Signature::from_items(NBITS, &query);
        let m = Metric::hamming();
        let (want, _) = tree.knn(&q, k, &m);
        let (got, _) = exec.knn(&q, k, &m);
        prop_assert_eq!(got, want);
    }
}
