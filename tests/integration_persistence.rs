//! Disk persistence: the same tree bytes served from a real file, across
//! close/reopen, with I/O accounting.

use sg_pager::{FileStore, PageStore};
use sg_quest::basket::{BasketParams, PatternPool};
use sg_sig::{Metric, Signature};
use sg_tree::{SgTree, TreeConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sg-tree-it-{tag}-{}-{:?}.pages",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn workload(n: usize) -> (u32, Vec<(u64, Signature)>, Vec<Signature>) {
    let pool = PatternPool::new(BasketParams::standard(10, 6), 77);
    let ds = pool.dataset(n, 77);
    let data: Vec<(u64, Signature)> = ds
        .signatures()
        .into_iter()
        .enumerate()
        .map(|(tid, s)| (tid as u64, s))
        .collect();
    let queries = pool
        .queries(10, 77)
        .iter()
        .map(|q| Signature::from_items(ds.n_items, q))
        .collect();
    (ds.n_items, data, queries)
}

#[test]
fn file_backed_tree_roundtrip() {
    let path = temp_path("roundtrip");
    let (nbits, data, queries) = workload(3000);
    let m = Metric::hamming();
    let mut expected = Vec::new();
    {
        let store: Arc<dyn PageStore> = Arc::new(FileStore::create(&path, 4096).unwrap());
        let mut tree = SgTree::create(store, TreeConfig::new(nbits)).unwrap();
        for (tid, sig) in &data {
            tree.insert(*tid, sig);
        }
        for q in &queries {
            expected.push(tree.knn(q, 5, &m).0);
        }
        tree.flush();
    }
    {
        let store: Arc<dyn PageStore> = Arc::new(FileStore::open(&path, 4096).unwrap());
        let tree = SgTree::open(store, 0, TreeConfig::new(nbits)).unwrap();
        assert_eq!(tree.len() as usize, data.len());
        tree.validate();
        for (q, want) in queries.iter().zip(&expected) {
            let (got, _) = tree.knn(q, 5, &m);
            let gd: Vec<f64> = got.iter().map(|n| n.dist).collect();
            let wd: Vec<f64> = want.iter().map(|n| n.dist).collect();
            assert_eq!(gd, wd);
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn reopened_tree_supports_updates() {
    let path = temp_path("updates");
    let (nbits, data, _) = workload(1500);
    {
        let store: Arc<dyn PageStore> = Arc::new(FileStore::create(&path, 4096).unwrap());
        let mut tree = SgTree::create(store, TreeConfig::new(nbits)).unwrap();
        for (tid, sig) in &data[..1000] {
            tree.insert(*tid, sig);
        }
    } // Drop flushes.
    {
        let store: Arc<dyn PageStore> = Arc::new(FileStore::open(&path, 4096).unwrap());
        let mut tree = SgTree::open(store, 0, TreeConfig::new(nbits)).unwrap();
        for (tid, sig) in &data[1000..] {
            tree.insert(*tid, sig);
        }
        for (tid, sig) in &data[..200] {
            assert!(tree.delete(*tid, sig));
        }
        tree.validate();
        assert_eq!(tree.len(), 1300);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn cold_cache_ios_track_nodes() {
    let path = temp_path("ios");
    let (nbits, data, queries) = workload(4000);
    let store: Arc<dyn PageStore> = Arc::new(FileStore::create(&path, 4096).unwrap());
    let mut tree = SgTree::create(store, TreeConfig::new(nbits).pool_frames(512)).unwrap();
    for (tid, sig) in &data {
        tree.insert(*tid, sig);
    }
    let m = Metric::hamming();
    for q in &queries {
        tree.pool().clear();
        tree.pool().stats().reset();
        let (_, stats) = tree.nn(q, &m);
        // With a cold cache, every distinct node visit is a physical read.
        assert_eq!(stats.io.physical_reads, stats.nodes_accessed);
        // Warm cache: a repeat of the same query reads nothing new.
        let (_, warm) = tree.nn(q, &m);
        assert_eq!(warm.io.physical_reads, 0);
    }
    drop(tree);
    std::fs::remove_file(&path).ok();
}

#[test]
fn limited_memory_still_correct() {
    // The paper highlights that the SG-tree works under limited and
    // changing memory; emulate a tiny buffer pool.
    let path = temp_path("tinypool");
    let (nbits, data, queries) = workload(2000);
    let store: Arc<dyn PageStore> = Arc::new(FileStore::create(&path, 4096).unwrap());
    let mut tree = SgTree::create(store, TreeConfig::new(nbits).pool_frames(2)).unwrap();
    for (tid, sig) in &data {
        tree.insert(*tid, sig);
    }
    tree.validate();
    let m = Metric::hamming();
    for q in &queries {
        let (got, stats) = tree.nn(q, &m);
        assert!(!got.is_empty());
        assert!(stats.io.physical_reads >= stats.nodes_accessed.saturating_sub(2));
    }
    drop(tree);
    std::fs::remove_file(&path).ok();
}
